package fault

import (
	"fmt"

	"mlnoc/internal/noc"
)

// dirPorts are the mesh direction ports in fixed priority order, used as the
// deterministic tie-break when several ports lie on equally short paths and
// none of them is the X-Y port.
var dirPorts = [4]noc.PortID{noc.PortNorth, noc.PortSouth, noc.PortWest, noc.PortEast}

// RouteDown is the noc.Message.RouteBits flag TableRouting sets once a
// message takes its first down edge in degraded (up*/down*) mode.
const RouteDown uint8 = 1

// TableRouting is a fault-aware router: for every destination router it holds
// next-hop ports, recomputed by Rebuild whenever the fault state changes.
//
// On an all-healthy topology the table is minimal with dimension-ordered
// tie-breaks, so it reproduces X-Y routing exactly (and inherits X-Y's
// deadlock freedom). Once any link is down it switches to up*/down* routing
// (Autonet): every healthy link is oriented by BFS level from a root router,
// and a legal path takes zero or more up edges followed by zero or more down
// edges — messages carry a phase bit (RouteBits) that commits on the first
// down edge. No down->up channel dependency can exist, so the dependency
// graph is acyclic and routing stays deadlock-free on an arbitrarily damaged
// mesh — minimal routing around faults is not (its cyclic detours wedge
// request/response workloads into buffer-full cycles), while up*/down* keeps
// every healthy link usable and paths near-minimal. Destinations with no
// healthy path get the explicit RouteUnreachable verdict.
type TableRouting struct {
	net      *noc.Network
	n        int  // number of routers
	degraded bool // false: minimal X-Y table; true: up*/down* tables
	// next[dst*n + at] is the direction port leaving router `at` toward
	// destination router `dst`, or -1 when unreachable. In degraded mode it
	// is the up-phase table (shortest legal path, any orientation next).
	next []int8
	// down[dst*n + at] is the degraded-mode down-phase table: the next hop
	// over down edges only, or -1.
	down []int8
	// level[r] is r's BFS depth from the root over healthy links (-1 when
	// cut off); together with the router ID it orients every edge.
	level []int
}

// NewTableRouting builds the routing tables for the network's current link
// state.
func NewTableRouting(net *noc.Network) *TableRouting {
	t := &TableRouting{net: net, n: len(net.Routers())}
	t.next = make([]int8, t.n*t.n)
	t.down = make([]int8, t.n*t.n)
	t.level = make([]int, t.n)
	t.Rebuild()
	return t
}

// Name implements noc.Routing.
func (t *TableRouting) Name() string { return "table" }

// Rebuild recomputes every next-hop entry from the network's current link
// state: the minimal X-Y-equivalent table while every link is healthy, the
// deadlock-free up*/down* tables once any link is down. The Injector calls
// it on every fault-state change; it is O(routers^2).
func (t *TableRouting) Rebuild() {
	if t.allHealthy() {
		t.degraded = false
		t.rebuildMinimal()
		t.renormalizeXY()
		return
	}
	t.degraded = true
	t.rebuildUpDown()
	t.renormalize()
}

// renormalizeXY is renormalize's counterpart for the transition back to full
// health: the table is exactly X-Y again, but a message parked mid-detour by
// up*/down* can occupy a vertical channel with X distance still to cover —
// the Y->X turn X-Y's deadlock freedom forbids. Those messages are requeued
// at their source; every other message routes X-Y legally from where it sits
// and just drops its stale phase bit. On a network that was never degraded
// this is a no-op, preserving the zero-cost-off contract.
func (t *TableRouting) renormalizeXY() {
	t.net.RequeueStranded(func(r *noc.Router, p noc.PortID, m *noc.Message) bool {
		m.RouteBits = 0
		dst := t.net.Node(m.Dst).Router
		if dst == r {
			return false
		}
		vertical := p == noc.PortNorth || p == noc.PortSouth
		return vertical && dst.Coord.X != r.Coord.X
	})
}

// renormalize restores the up*/down* invariant for messages already buffered
// or mid-link when the orientation (re)computes: every message occupying a
// down channel must be in the down phase, every other message restarts its
// climb. A message that crossed an edge before the rebuild — under healthy
// X-Y routing or an older orientation — can sit at the head of a channel the
// new orientation classifies as down while needing to climb; that single
// down->up dependency re-admits the buffer-full cycles up*/down* exists to
// prevent, and with message-class buffers only two deep it wedges real
// workloads within a few hundred cycles. Messages in a down channel with no
// all-down continuation toward their destination have no legal next hop at
// all and are requeued at their source (counted in FaultStats.Requeued).
func (t *TableRouting) renormalize() {
	t.net.RequeueStranded(func(r *noc.Router, p noc.PortID, m *noc.Message) bool {
		dst := t.net.Node(m.Dst).Router
		if dst == r {
			return false // ejects here; the attach channel always sinks
		}
		u := r.Neighbor(p)
		if u == nil || !t.downEdge(u, r) {
			// Injection channel or up channel: restarting the climb is legal.
			m.RouteBits &^= RouteDown
			return false
		}
		if t.down[dst.ID()*t.n+r.ID()] >= 0 {
			m.RouteBits |= RouteDown // keep descending
			return false
		}
		return true
	})
}

// allHealthy reports whether every inter-router link is up in both
// directions.
func (t *TableRouting) allHealthy() bool {
	for _, r := range t.net.Routers() {
		for _, p := range dirPorts {
			if r.Neighbor(p) != nil && !r.LinkUp(p) {
				return false
			}
		}
	}
	return true
}

// rebuildMinimal fills the table with shortest paths, tie-broken toward the
// topology's dimension-ordered port (Router.DirToward); on a healthy mesh this
// is exactly X-Y routing, and on a healthy torus exactly the built-in
// ring-shortest DOR — including the east/south tie at exactly half an even
// ring, where both ways around are shortest and DirToward picks the one the
// built-in routing takes.
func (t *TableRouting) rebuildMinimal() {
	routers := t.net.Routers()
	dist := make([]int, t.n)
	queue := make([]int, 0, t.n)
	for dstID, dst := range routers {
		base := dstID * t.n
		for i := range dist {
			dist[i] = -1
			t.next[base+i] = -1
		}
		// Reverse BFS from the destination: relax healthy directed links
		// u -> v while walking from v to u, so dist[u] is the healthy hop
		// count from u to dst.
		dist[dstID] = 0
		queue = append(queue[:0], dstID)
		for len(queue) > 0 {
			v := routers[queue[0]]
			queue = queue[1:]
			for _, p := range dirPorts {
				u := v.Neighbor(p)
				if u == nil || dist[u.ID()] >= 0 || !u.LinkUp(p.Opposite()) {
					continue
				}
				dist[u.ID()] = dist[v.ID()] + 1
				queue = append(queue, u.ID())
			}
		}
		for uID, u := range routers {
			if uID == dstID || dist[uID] < 0 {
				continue
			}
			xy := u.DirToward(dst.Coord)
			best := noc.PortID(-1)
			for _, p := range dirPorts {
				w := u.Neighbor(p)
				if w == nil || !u.LinkUp(p) || dist[w.ID()] != dist[uID]-1 {
					continue
				}
				if p == xy {
					best = p
					break
				}
				if best < 0 {
					best = p
				}
			}
			t.next[base+uID] = int8(best)
		}
	}
}

// healthyEdge reports whether the link behind u's direction port p is up in
// both directions (the Injector always fails direction links pairwise).
func healthyEdge(u *noc.Router, p noc.PortID) *noc.Router {
	v := u.Neighbor(p)
	if v == nil || !u.LinkUp(p) || !v.LinkUp(p.Opposite()) {
		return nil
	}
	return v
}

// downEdge reports whether the forward hop u -> v descends the up*/down*
// orientation (away from the root by BFS level, router ID breaking ties).
func (t *TableRouting) downEdge(u, v *noc.Router) bool {
	lu, lv := t.level[u.ID()], t.level[v.ID()]
	return lv > lu || (lv == lu && v.ID() > u.ID())
}

// rebuildUpDown fills the up- and down-phase tables with shortest legal
// up*/down* paths: orient every healthy link by BFS level from router 0, and
// per destination run a reverse BFS over (router, phase) states where an up
// edge keeps the up phase and a down edge commits to the down phase. Every
// table walk is a strict up-phase followed by a strict down-phase — no
// down->up channel dependency can exist, so no buffer-full cycle can form.
func (t *TableRouting) rebuildUpDown() {
	routers := t.net.Routers()
	for i := range t.level {
		t.level[i] = -1
	}
	t.level[0] = 0
	queue := make([]int, 0, t.n)
	queue = append(queue, 0)
	for len(queue) > 0 {
		u := routers[queue[0]]
		queue = queue[1:]
		for _, p := range dirPorts {
			v := healthyEdge(u, p)
			if v == nil || t.level[v.ID()] >= 0 {
				continue
			}
			t.level[v.ID()] = t.level[u.ID()] + 1
			queue = append(queue, v.ID())
		}
	}

	// dist over states rID*2 + phase; phase 0 climbs, phase 1 has committed
	// to descending.
	dist := make([]int32, 2*t.n)
	squeue := make([]int, 0, 2*t.n)
	for dstID, dst := range routers {
		base := dstID * t.n
		for i := 0; i < t.n; i++ {
			t.next[base+i] = -1
			t.down[base+i] = -1
		}
		if t.level[dstID] < 0 {
			continue // dst cut off entirely: unreachable from everywhere
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[dstID*2] = 0
		dist[dstID*2+1] = 0
		squeue = append(squeue[:0], dstID*2, dstID*2+1)
		for len(squeue) > 0 {
			s := squeue[0]
			squeue = squeue[1:]
			vID, ph := s/2, s%2
			v := routers[vID]
			for _, p := range dirPorts {
				u := healthyEdge(v, p)
				if u == nil {
					continue
				}
				// Forward edge u -> v reaches state (v, ph) from (u, 0) when
				// the edge orientation matches ph, and from (u, 1) only when
				// the edge descends.
				vIsDown := t.downEdge(u, v)
				if (ph == 1) != vIsDown {
					continue
				}
				if s0 := u.ID() * 2; dist[s0] < 0 {
					dist[s0] = dist[s] + 1
					squeue = append(squeue, s0)
				}
				if vIsDown {
					if s1 := u.ID()*2 + 1; dist[s1] < 0 {
						dist[s1] = dist[s] + 1
						squeue = append(squeue, s1)
					}
				}
			}
		}
		for uID, u := range routers {
			if uID == dstID || t.level[uID] < 0 {
				continue
			}
			xy := u.DirToward(dst.Coord)
			bestUp, bestDown := noc.PortID(-1), noc.PortID(-1)
			var costUp, costDown int32 = -1, -1
			for _, p := range dirPorts {
				v := healthyEdge(u, p)
				if v == nil {
					continue
				}
				var c int32
				if t.downEdge(u, v) {
					c = dist[v.ID()*2+1]
					if c >= 0 && (costDown < 0 || c < costDown || (c == costDown && p == xy)) {
						bestDown, costDown = p, c
					}
				} else {
					c = dist[v.ID()*2]
				}
				if c >= 0 && (costUp < 0 || c < costUp || (c == costUp && p == xy)) {
					bestUp, costUp = p, c
				}
			}
			t.next[base+uID] = int8(bestUp)
			t.down[base+uID] = int8(bestDown)
		}
	}
}

// Route implements noc.Routing.
func (t *TableRouting) Route(r *noc.Router, m *noc.Message) noc.PortID {
	dst := t.net.Node(m.Dst)
	if dst.Router == r {
		if !r.LinkUp(dst.Port) {
			return noc.RouteUnreachable
		}
		return dst.Port
	}
	base := dst.Router.ID()*t.n + r.ID()
	if t.degraded {
		if m.RouteBits&RouteDown != 0 {
			if p := t.down[base]; p >= 0 {
				return noc.PortID(p)
			}
			// Only possible after a rebuild reoriented the edges under the
			// message: restart the climb under the new orientation.
			m.RouteBits &^= RouteDown
		}
		p := t.next[base]
		if p < 0 {
			return noc.RouteUnreachable
		}
		out := noc.PortID(p)
		if t.downEdge(r, r.Neighbor(out)) {
			m.RouteBits |= RouteDown
		}
		return out
	}
	p := t.next[base]
	if p < 0 {
		return noc.RouteUnreachable
	}
	return noc.PortID(p)
}

// ShardSafe implements noc.ShardSafeRouting. Route reads only tables that
// rebuild on fault events (never during arbitration) and writes only the
// queried message's RouteBits, so the parallel phase-1 scan may call it.
func (t *TableRouting) ShardSafe() bool { return true }

// WestFirstRouting is the west-first turn model with minimal adaptivity: all
// westward hops happen first (no turning into west later), and eastbound
// traffic may detour minimally north or south around a dead east link. It
// needs no tables and no rebuilds — each hop consults live link state — at
// the price of weaker coverage than TableRouting: a message whose only
// admissible next hop under the turn model is dead gets the unreachable
// verdict even if a non-minimal healthy path exists.
type WestFirstRouting struct {
	net *noc.Network
}

// NewWestFirstRouting returns a west-first router for the network. The turn
// model's deadlock-freedom proof assumes an open mesh — wraparound links put
// the forbidden turns back into a cycle — so torus networks are rejected with
// an error (an explicit capability check, not a mid-run panic).
func NewWestFirstRouting(net *noc.Network) (*WestFirstRouting, error) {
	if net.Torus() {
		return nil, fmt.Errorf("fault: west-first routing requires an open mesh, not a torus")
	}
	return &WestFirstRouting{net: net}, nil
}

// Name implements noc.Routing.
func (w *WestFirstRouting) Name() string { return "west-first" }

// Route implements noc.Routing.
func (w *WestFirstRouting) Route(r *noc.Router, m *noc.Message) noc.PortID {
	dst := w.net.Node(m.Dst)
	dc := dst.Router.Coord
	dx, dy := dc.X-r.Coord.X, dc.Y-r.Coord.Y
	if dx < 0 {
		// Westward phase: west is the only admissible direction.
		if r.LinkUp(noc.PortWest) && r.Neighbor(noc.PortWest) != nil {
			return noc.PortWest
		}
		return noc.RouteUnreachable
	}
	if dx > 0 {
		if r.LinkUp(noc.PortEast) && r.Neighbor(noc.PortEast) != nil {
			return noc.PortEast
		}
		// Minimal adaptive detour: take the pending Y hop now instead.
		if dy > 0 && r.LinkUp(noc.PortSouth) && r.Neighbor(noc.PortSouth) != nil {
			return noc.PortSouth
		}
		if dy < 0 && r.LinkUp(noc.PortNorth) && r.Neighbor(noc.PortNorth) != nil {
			return noc.PortNorth
		}
		return noc.RouteUnreachable
	}
	if dy > 0 {
		if r.LinkUp(noc.PortSouth) && r.Neighbor(noc.PortSouth) != nil {
			return noc.PortSouth
		}
		return noc.RouteUnreachable
	}
	if dy < 0 {
		if r.LinkUp(noc.PortNorth) && r.Neighbor(noc.PortNorth) != nil {
			return noc.PortNorth
		}
		return noc.RouteUnreachable
	}
	if !r.LinkUp(dst.Port) {
		return noc.RouteUnreachable
	}
	return dst.Port
}

// ShardSafe implements noc.ShardSafeRouting: west-first consults only live
// link state and never writes outside the queried message.
func (w *WestFirstRouting) ShardSafe() bool { return true }
