package fault

import (
	"fmt"
	"math/rand"

	"mlnoc/internal/noc"
)

// Hazard is a stochastic fault process: each cycle, with probability Rate, one
// randomly chosen healthy undirected mesh link suffers an outage lasting
// Repair cycles. Draws come from the Config's explicit RNG, so a hazard run
// is exactly reproducible from its seed. The zero value disables the process.
type Hazard struct {
	// Rate is the per-cycle probability of a new link outage, in [0,1].
	Rate float64
	// Repair is the outage duration in cycles; must be positive when Rate is.
	Repair int64
}

// UnreachableReport records one message evicted with an unreachable verdict.
type UnreachableReport struct {
	Cycle  int64      `json:"cycle"`
	Router int        `json:"router"`
	Src    noc.NodeID `json:"src"`
	Dst    noc.NodeID `json:"dst"`
}

// Config configures an Injector.
type Config struct {
	// Plan is the deterministic fault schedule to apply.
	Plan Plan
	// Hazard, if its Rate is positive, adds stochastic link outages on top of
	// the plan. It requires RNG.
	Hazard Hazard
	// RNG drives the hazard process. It is never seeded or shared implicitly;
	// callers pass rand.New(rand.NewSource(seed)).
	RNG *rand.Rand
	// OnChange, if set, runs after every cycle on which the fault state
	// changed (links flipped, routers frozen or thawed). Table-based routers
	// hook their Rebuild here.
	OnChange func(now int64)
	// OnUnreachable, if set, runs for every message evicted with an
	// unreachable verdict, including those beyond the MaxReports bound.
	OnUnreachable func(UnreachableReport)
	// MaxReports bounds the retained unreachable-report list (default 64).
	MaxReports int
}

// Stats aggregates the engine's fault counters with the injector's own event
// counts.
type Stats struct {
	noc.FaultStats
	// LinkKills counts permanent link kills applied (undirected events, not
	// directed links).
	LinkKills int64 `json:"link_kills"`
	// LinkOutages counts scheduled transient outages applied.
	LinkOutages int64 `json:"link_outages"`
	// HazardOutages counts outages raised by the stochastic hazard process.
	HazardOutages int64 `json:"hazard_outages"`
	// RouterFreezes counts router freezes applied.
	RouterFreezes int64 `json:"router_freezes"`
	// Repairs counts links restored (outage ends and hazard repairs).
	Repairs int64 `json:"repairs"`
}

// repair is a pending hazard repair; the queue stays sorted because every
// hazard outage lasts the same Repair duration.
type repair struct {
	at   int64
	link Link
}

// Injector applies a fault Config to a network cycle by cycle. It installs
// itself as an OnCycle hook at Attach time and needs no further driving.
type Injector struct {
	net *noc.Network
	cfg Config

	timeline []transition
	tnext    int
	repairs  []repair

	downSince map[Link]int64
	downtime  map[Link]int64
	reports   []UnreachableReport

	kills, outages, hazards, freezes, repaired int64
}

// Attach validates cfg against net and installs an Injector on it: scheduled
// transitions already due (at or before the next cycle) apply immediately,
// the rest apply from an OnCycle hook as the simulation advances. Messages
// evicted as unreachable are recorded through the network's unreachable
// handler.
func Attach(net *noc.Network, cfg Config) (*Injector, error) {
	if err := cfg.Plan.Validate(net); err != nil {
		return nil, err
	}
	if cfg.Hazard.Rate < 0 || cfg.Hazard.Rate > 1 {
		return nil, fmt.Errorf("fault: hazard rate %v outside [0,1]", cfg.Hazard.Rate)
	}
	if cfg.Hazard.Rate > 0 {
		if cfg.Hazard.Repair <= 0 {
			return nil, fmt.Errorf("fault: hazard repair time must be positive, got %d", cfg.Hazard.Repair)
		}
		if cfg.RNG == nil {
			return nil, fmt.Errorf("fault: hazard process requires an explicit RNG")
		}
	}
	if cfg.MaxReports <= 0 {
		cfg.MaxReports = 64
	}
	in := &Injector{
		net:       net,
		cfg:       cfg,
		timeline:  cfg.Plan.timeline(),
		downSince: make(map[Link]int64),
		downtime:  make(map[Link]int64),
	}
	net.SetUnreachableHandler(func(now int64, r *noc.Router, m *noc.Message) {
		rep := UnreachableReport{Cycle: now, Router: r.ID(), Src: m.Src, Dst: m.Dst}
		if len(in.reports) < in.cfg.MaxReports {
			in.reports = append(in.reports, rep)
		}
		if in.cfg.OnUnreachable != nil {
			in.cfg.OnUnreachable(rep)
		}
	})
	if in.advance(net.Cycle()+1) && cfg.OnChange != nil {
		cfg.OnChange(net.Cycle())
	}
	net.AddOnCycle(in.onCycle)
	return in, nil
}

// onCycle runs at the end of every cycle `now`: transitions and repairs due
// for cycle now+1 apply so they are in force when that cycle arbitrates, then
// the hazard process samples.
func (in *Injector) onCycle(net *noc.Network) {
	now := net.Cycle()
	eff := now + 1
	changed := in.advance(eff)
	if in.cfg.Hazard.Rate > 0 && in.cfg.RNG.Float64() < in.cfg.Hazard.Rate {
		if l, ok := in.pickHealthyLink(); ok {
			in.setLink(l.Router, l.Port, false, true, eff)
			in.hazards++
			in.repairs = append(in.repairs, repair{at: eff + in.cfg.Hazard.Repair, link: l})
			changed = true
		}
	}
	if changed && in.cfg.OnChange != nil {
		in.cfg.OnChange(now)
	}
}

// advance applies every scheduled transition and pending hazard repair due at
// or before cycle eff, reporting whether anything changed.
func (in *Injector) advance(eff int64) bool {
	changed := false
	for in.tnext < len(in.timeline) && in.timeline[in.tnext].at <= eff {
		in.apply(in.timeline[in.tnext], eff)
		in.tnext++
		changed = true
	}
	for len(in.repairs) > 0 && in.repairs[0].at <= eff {
		in.setLink(in.repairs[0].link.Router, in.repairs[0].link.Port, false, false, eff)
		in.repaired++
		in.repairs = in.repairs[1:]
		changed = true
	}
	return changed
}

// apply executes one transition, effective at cycle eff.
func (in *Injector) apply(tr transition, eff int64) {
	e := tr.ev
	switch e.Kind {
	case KindLinkKill:
		in.setLink(e.Router, e.Port, e.OneWay, true, eff)
		in.kills++
	case KindLinkOutage:
		in.setLink(e.Router, e.Port, e.OneWay, tr.down, eff)
		if tr.down {
			in.outages++
		} else {
			in.repaired++
		}
	case KindRouterFreeze:
		in.net.FreezeRouter(e.Router, tr.down)
		if tr.down {
			in.freezes++
		}
	}
}

// setLink flips the directed link (router, port) and, for two-way direction
// events, its reverse, maintaining the per-link downtime ledger.
func (in *Injector) setLink(router int, port noc.PortID, oneWay, down bool, eff int64) {
	in.setDir(router, port, down, eff)
	if oneWay || !port.IsDirection() {
		return
	}
	if peer := in.net.Routers()[router].Neighbor(port); peer != nil {
		in.setDir(peer.ID(), port.Opposite(), down, eff)
	}
}

func (in *Injector) setDir(router int, port noc.PortID, down bool, eff int64) {
	in.net.SetLinkDown(router, port, down)
	l := Link{Router: router, Port: port}
	if down {
		if _, dup := in.downSince[l]; !dup {
			in.downSince[l] = eff
		}
		return
	}
	if since, ok := in.downSince[l]; ok {
		in.downtime[l] += eff - since
		delete(in.downSince, l)
	}
}

// pickHealthyLink draws one undirected mesh link with both directions up,
// uniformly at random from the configured RNG, or reports none available.
func (in *Injector) pickHealthyLink() (Link, bool) {
	routers := in.net.Routers()
	healthy := make([]Link, 0, 2*len(routers))
	for _, l := range MeshLinks(in.net) {
		r := routers[l.Router]
		peer := r.Neighbor(l.Port)
		if r.LinkUp(l.Port) && peer.LinkUp(l.Port.Opposite()) {
			healthy = append(healthy, l)
		}
	}
	if len(healthy) == 0 {
		return Link{}, false
	}
	return healthy[in.cfg.RNG.Intn(len(healthy))], true
}

// Stats returns the combined engine and injector fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		FaultStats:    in.net.FaultStats(),
		LinkKills:     in.kills,
		LinkOutages:   in.outages,
		HazardOutages: in.hazards,
		RouterFreezes: in.freezes,
		Repairs:       in.repaired,
	}
}

// Reports returns a copy of the retained unreachable reports (bounded by
// Config.MaxReports; the engine's FaultStats.Unreachable has the full count).
func (in *Injector) Reports() []UnreachableReport {
	return append([]UnreachableReport(nil), in.reports...)
}

// Downtime returns the accumulated per-directed-link downtime in cycles,
// counting still-open outages up to the current cycle.
func (in *Injector) Downtime() map[Link]int64 {
	cur := in.net.Cycle() + 1
	out := make(map[Link]int64, len(in.downtime)+len(in.downSince))
	for l, d := range in.downtime {
		out[l] = d
	}
	for l, since := range in.downSince {
		out[l] += cur - since
	}
	return out
}
