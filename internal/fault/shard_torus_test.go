package fault

import (
	"testing"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
)

// torus builds a cores-on-every-router torus with the global-age policy, the
// torus counterpart of the mesh helper.
func torus(w, h, vcs int) (*noc.Network, []*noc.Node) {
	net, cores := noc.BuildTorusCores(noc.Config{Width: w, Height: h, VCs: vcs, BufferCap: 4})
	net.SetPolicy(arb.NewGlobalAge())
	return net, cores
}

// TestShardInvarianceDegraded pins the sharded engine against the sequential
// one on a faulted run that goes through the full fault-aware stack: table
// routing degrades to up*/down* after mid-run link kills, messages carry
// RouteBits phase state, outages repair, and a router freezes — on both a
// mesh and a torus. TableRouting declares itself shard-safe; any divergence
// between phase-1 route calls and the sequential probe order shows up as a
// delivery-trace mismatch.
func TestShardInvarianceDegraded(t *testing.T) {
	topologies := map[string]func() (*noc.Network, []*noc.Node){
		"mesh":  func() (*noc.Network, []*noc.Node) { return mesh(4, 4, 2) },
		"torus": func() (*noc.Network, []*noc.Node) { return torus(4, 4, 2) },
	}
	for tname, build := range topologies {
		t.Run(tname, func(t *testing.T) {
			run := func(shards int) (*noc.Network, []string, Stats) {
				net, cores := build()
				var plan Plan
				plan.KillLink(net.RouterAt(1, 1).ID(), noc.PortEast, 100)
				plan.KillLink(net.RouterAt(2, 2).ID(), noc.PortSouth, 100)
				plan.Outage(net.RouterAt(0, 1).ID(), noc.PortEast, 150, 400)
				plan.FreezeRouter(net.RouterAt(3, 0).ID(), 200, 350)
				inj, err := (Spec{Plan: plan}).Equip(net)
				if err != nil {
					t.Fatalf("Equip: %v", err)
				}
				net.SetShards(shards)
				// Zero the activity threshold so the two-phase fork runs
				// every cycle even at this test's light load.
				net.SetShardMinActive(0)
				defer net.SetShards(1)
				trace := traceDeliveries(cores)
				drive(net, cores, 31, 800)
				return net, *trace, inj.Stats()
			}
			baseNet, baseTrace, baseStats := run(1)
			if baseStats.Reroutes == 0 || baseStats.Requeued == 0 {
				t.Fatalf("fault scenario is vacuous: %+v", baseStats)
			}
			if len(baseTrace) == 0 {
				t.Fatal("no deliveries recorded")
			}
			for _, k := range []int{2, 4} {
				net, trace, stats := run(k)
				if len(trace) != len(baseTrace) {
					t.Fatalf("K=%d delivery counts diverge: %d vs %d", k, len(trace), len(baseTrace))
				}
				for i := range baseTrace {
					if trace[i] != baseTrace[i] {
						t.Fatalf("K=%d delivery %d diverges: %q vs %q", k, i, trace[i], baseTrace[i])
					}
				}
				if stats != baseStats {
					t.Fatalf("K=%d fault stats diverge: %+v vs %+v", k, stats, baseStats)
				}
				if net.Stats().Injected != baseNet.Stats().Injected ||
					net.Stats().Latency.Mean() != baseNet.Stats().Latency.Mean() {
					t.Fatalf("K=%d network stats diverge", k)
				}
			}
		})
	}
}

// TestTorusFaultConservation cuts one torus router off entirely (all four
// ring links killed) and checks the conservation identity
// Injected == Delivered + Unreachable + InFlight: traffic to the dead router
// gets explicit unreachable verdicts, everything else routes around the hole
// over the wraparound links, and nothing is silently lost.
func TestTorusFaultConservation(t *testing.T) {
	net, cores := torus(5, 5, 2)
	dead := net.RouterAt(2, 2)
	var plan Plan
	for _, p := range []noc.PortID{noc.PortNorth, noc.PortSouth, noc.PortWest, noc.PortEast} {
		plan.KillLink(dead.ID(), p, 100)
	}
	inj, err := (Spec{Plan: plan}).Equip(net)
	if err != nil {
		t.Fatalf("Equip: %v", err)
	}
	drive(net, cores, 53, 1200)
	s := net.Stats()
	fs := inj.Stats()
	if s.Injected != s.Delivered+fs.Unreachable+net.InFlight() {
		t.Fatalf("conservation broken: injected=%d delivered=%d unreachable=%d inflight=%d",
			s.Injected, s.Delivered, fs.Unreachable, net.InFlight())
	}
	if fs.Unreachable == 0 {
		t.Fatal("no unreachable verdicts despite a fully cut-off router")
	}
	if fs.Reroutes == 0 {
		t.Fatal("no reroutes counted; torus healthy paths never detoured")
	}
	if net.InFlight() != 0 {
		t.Fatalf("%d messages still in flight after drain; up*/down* wedged on the torus", net.InFlight())
	}
}

// TestWestFirstRejectsTorus pins the explicit capability check: the west-first
// turn model's deadlock-freedom proof needs an open mesh, so construction on a
// torus must fail with an error instead of wedging at runtime.
func TestWestFirstRejectsTorus(t *testing.T) {
	net, _ := torus(4, 4, 1)
	if _, err := NewWestFirstRouting(net); err == nil {
		t.Fatal("NewWestFirstRouting accepted a torus")
	}
	mesh, _ := mesh(4, 4, 1)
	if _, err := NewWestFirstRouting(mesh); err != nil {
		t.Fatalf("NewWestFirstRouting rejected an open mesh: %v", err)
	}
}
