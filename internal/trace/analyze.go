package trace

import (
	"fmt"
	"sort"

	"mlnoc/internal/noc"
	"mlnoc/internal/stats"
	"mlnoc/internal/viz"
)

// MsgRecord is the folded lifecycle of one traced message: where its
// end-to-end latency went. The decomposition is exact for delivered messages
// with a complete trace:
//
//	Total = SourceQueue + Queue + ArbLosses + Link
//
// where SourceQueue is time spent in the source node's injection queue,
// ArbLosses counts cycles lost as a defeated head-of-buffer candidate in a
// contested arbitration (one cycle per loss), Link is cycles spent
// serializing across links (including the final ejection), and Queue is the
// residual: buffered cycles not attributable to a recorded arbitration loss
// (head-of-line blocking behind a busy output, credit stalls, uncontested
// idle cycles). On faulty networks a requeue aborts an in-flight
// serialization whose cycles were already charged to Link, so Queue can go
// negative there; it is exact on healthy networks.
type MsgRecord struct {
	ID           uint64
	Src          noc.NodeID
	Dst          noc.NodeID
	Class        noc.Class
	InjectCycle  int64
	DeliverCycle int64
	Total        int64
	SourceQueue  int64
	Queue        int64
	ArbLosses    int64
	Link         int64
	Hops         int // link traversals, including the ejection
	Reroutes     int
	Requeues     int
}

// ComponentStats summarizes one latency component across a message
// population.
type ComponentStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func component(xs []float64) ComponentStats {
	if len(xs) == 0 {
		return ComponentStats{}
	}
	return ComponentStats{
		Mean: stats.Mean(xs),
		P50:  stats.Percentile(xs, 50),
		P95:  stats.Percentile(xs, 95),
		P99:  stats.Percentile(xs, 99),
		Max:  stats.Max(xs),
	}
}

// ClassBreakdown aggregates the latency decomposition over the delivered,
// completely-traced messages of one class (or all classes for the Overall
// row).
type ClassBreakdown struct {
	Class       string         `json:"class"`
	Count       int            `json:"count"`
	Total       ComponentStats `json:"total"`
	SourceQueue ComponentStats `json:"source_queue"`
	Queue       ComponentStats `json:"queue"`
	ArbLoss     ComponentStats `json:"arb_loss"`
	Link        ComponentStats `json:"link"`
}

// Breakdown is the latency-breakdown analysis of a trace.
type Breakdown struct {
	// Msgs holds one record per delivered, completely-traced message, in
	// delivery order.
	Msgs []MsgRecord
	// ByClass aggregates per message class, ordered by class; Overall
	// aggregates across all classes.
	ByClass []ClassBreakdown
	Overall ClassBreakdown
	// Incomplete counts delivered messages whose early events were evicted
	// by ring wrap-around; they are excluded from Msgs and the aggregates.
	Incomplete int
	// InFlight counts traced messages injected but not delivered within the
	// trace window.
	InFlight int
	// Unreachable counts traced messages evicted as unreachable.
	Unreachable int
}

// Analyze folds the tracer's retained events into a latency breakdown.
func Analyze(t *Tracer) *Breakdown { return AnalyzeEvents(t.Events()) }

// AnalyzeEvents folds an event stream (in recording order) into a latency
// breakdown. Messages whose inject event is missing — evicted by ring
// wrap-around — are counted as Incomplete rather than skewing the
// aggregates: the ring evicts oldest-first, so a retained inject implies the
// message's entire later lifecycle is retained too.
func AnalyzeEvents(events []Event) *Breakdown {
	type open struct {
		rec       MsgRecord
		hasInject bool
	}
	b := &Breakdown{}
	inFlight := make(map[uint64]*open)
	for _, e := range events {
		o := inFlight[e.MsgID]
		if o == nil {
			o = &open{rec: MsgRecord{ID: e.MsgID, Src: e.Src, Dst: e.Dst, Class: e.Class}}
			inFlight[e.MsgID] = o
		}
		switch e.Kind {
		case KindInject:
			o.hasInject = true
			o.rec.InjectCycle = e.Cycle
			o.rec.SourceQueue = e.Dur
		case KindArbLoss:
			o.rec.ArbLosses++
		case KindLink:
			o.rec.Link += e.Dur
			o.rec.Hops++
		case KindReroute:
			o.rec.Reroutes++
		case KindRequeue:
			o.rec.Requeues++
		case KindDeliver:
			delete(inFlight, e.MsgID)
			if !o.hasInject {
				b.Incomplete++
				continue
			}
			o.rec.DeliverCycle = e.Cycle
			o.rec.Total = e.Dur
			o.rec.Queue = o.rec.Total - o.rec.SourceQueue - o.rec.ArbLosses - o.rec.Link
			b.Msgs = append(b.Msgs, o.rec)
		case KindUnreachable:
			delete(inFlight, e.MsgID)
			b.Unreachable++
		}
	}
	b.InFlight = len(inFlight)
	b.aggregate()
	return b
}

func (b *Breakdown) aggregate() {
	byClass := make(map[noc.Class][]MsgRecord)
	for _, m := range b.Msgs {
		byClass[m.Class] = append(byClass[m.Class], m)
	}
	classes := make([]noc.Class, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		b.ByClass = append(b.ByClass, aggregateClass(fmt.Sprintf("vc%d", c), byClass[c]))
	}
	b.Overall = aggregateClass("all", b.Msgs)
}

func aggregateClass(name string, msgs []MsgRecord) ClassBreakdown {
	n := len(msgs)
	total := make([]float64, n)
	srcq := make([]float64, n)
	queue := make([]float64, n)
	arb := make([]float64, n)
	link := make([]float64, n)
	for i, m := range msgs {
		total[i] = float64(m.Total)
		srcq[i] = float64(m.SourceQueue)
		queue[i] = float64(m.Queue)
		arb[i] = float64(m.ArbLosses)
		link[i] = float64(m.Link)
	}
	return ClassBreakdown{
		Class:       name,
		Count:       n,
		Total:       component(total),
		SourceQueue: component(srcq),
		Queue:       component(queue),
		ArbLoss:     component(arb),
		Link:        component(link),
	}
}

// Render formats the breakdown as an aligned text table: one row per class
// plus an overall row, with the total-latency quantiles and the mean of each
// component.
func (b *Breakdown) Render() string {
	headers := []string{"class", "msgs", "total", "p50", "p95", "p99",
		"srcq", "queue", "arb", "link"}
	row := func(c ClassBreakdown) []string {
		return []string{
			c.Class,
			fmt.Sprintf("%d", c.Count),
			fmt.Sprintf("%.1f", c.Total.Mean),
			fmt.Sprintf("%.0f", c.Total.P50),
			fmt.Sprintf("%.0f", c.Total.P95),
			fmt.Sprintf("%.0f", c.Total.P99),
			fmt.Sprintf("%.1f", c.SourceQueue.Mean),
			fmt.Sprintf("%.1f", c.Queue.Mean),
			fmt.Sprintf("%.1f", c.ArbLoss.Mean),
			fmt.Sprintf("%.1f", c.Link.Mean),
		}
	}
	rows := make([][]string, 0, len(b.ByClass)+1)
	for _, c := range b.ByClass {
		rows = append(rows, row(c))
	}
	rows = append(rows, row(b.Overall))
	out := viz.Table(headers, rows)
	if b.Incomplete > 0 || b.InFlight > 0 || b.Unreachable > 0 {
		out += fmt.Sprintf("excluded: %d incomplete (ring eviction), %d in flight, %d unreachable\n",
			b.Incomplete, b.InFlight, b.Unreachable)
	}
	return out
}
