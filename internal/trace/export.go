package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"mlnoc/internal/noc"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the format Perfetto and chrome://tracing load directly. Timestamps are in
// microseconds; the exporter maps one simulator cycle to one microsecond.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the tracer's retained events as Chrome trace-event
// JSON loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// The layout maps the topology onto the trace model: each router is a
// process, each router port a thread (track), granted link traversals are
// complete slices on the output port's track, and each message's
// generation-to-delivery lifetime is an async slice keyed by message ID.
// Arbitration losses, reroutes, requeues and unreachable evictions appear as
// instant events at the router-port where they occurred.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	events := make([]chromeEvent, 0, 2*t.Len()+8*len(t.net.Routers()))
	for _, r := range t.net.Routers() {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: r.ID(),
			Args: map[string]any{"name": fmt.Sprintf("router %d %s", r.ID(), r.Coord)},
		})
		for p := noc.PortID(0); p < noc.MaxPorts; p++ {
			if !r.HasPort(p) {
				continue
			}
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: r.ID(), Tid: int(p),
				Args: map[string]any{"name": p.String()},
			})
		}
	}
	for _, e := range t.Events() {
		name := fmt.Sprintf("msg %d", e.MsgID)
		args := map[string]any{
			"msg": e.MsgID, "src": int(e.Src), "dst": int(e.Dst), "vc": int(e.Class),
		}
		switch e.Kind {
		case KindLink:
			events = append(events, chromeEvent{
				Name: name, Cat: "link", Ph: "X",
				Ts: e.Cycle, Dur: e.Dur, Pid: e.Router, Tid: int(e.Out), Args: args,
			})
		case KindInject:
			events = append(events, chromeEvent{
				Name: name, Cat: "msg", Ph: "b", ID: fmt.Sprintf("%d", e.MsgID),
				Ts: e.Cycle - e.Dur, Pid: e.Router, Tid: int(e.Port), Args: args,
			})
		case KindDeliver:
			args["latency"] = e.Dur
			events = append(events, chromeEvent{
				Name: name, Cat: "msg", Ph: "e", ID: fmt.Sprintf("%d", e.MsgID),
				Ts: e.Cycle, Pid: e.Router, Tid: int(e.Port), Args: args,
			})
		case KindArbLoss:
			args["cands"] = e.NumCands
			args["competing"] = fmt.Sprintf("%#x", e.Competing)
			args["win_port"] = int(e.WinPort)
			args["win_vc"] = e.WinVC
			events = append(events, chromeEvent{
				Name: "arb-loss", Cat: "arb", Ph: "i", S: "t",
				Ts: e.Cycle, Pid: e.Router, Tid: int(e.Out), Args: args,
			})
		case KindReroute, KindRequeue, KindUnreachable:
			tid := int(e.Port)
			if e.Kind == KindReroute {
				tid = int(e.Out)
			}
			if tid < 0 {
				tid = 0
			}
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Cat: "fault", Ph: "i", S: "t",
				Ts: e.Cycle, Pid: e.Router, Tid: tid, Args: args,
			})
		}
	}
	out := struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	return json.NewEncoder(w).Encode(out)
}

// WriteCSV writes the tracer's retained events as compact CSV, one event per
// row in recording order — the grep/pandas-friendly companion of the
// Perfetto export.
func WriteCSV(w io.Writer, t *Tracer) error {
	if _, err := io.WriteString(w,
		"cycle,kind,msg,src,dst,class,router,port,vc,out,dur,cands,competing,win_port,win_vc\n"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		_, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%#x,%d,%d\n",
			e.Cycle, e.Kind, e.MsgID, e.Src, e.Dst, e.Class,
			e.Router, e.Port, e.VC, e.Out, e.Dur,
			e.NumCands, e.Competing, e.WinPort, e.WinVC)
		if err != nil {
			return err
		}
	}
	return nil
}
