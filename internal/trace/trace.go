// Package trace is the per-message lifecycle tracer of the NoC simulator: a
// sampling, ring-buffered event recorder that follows individual messages
// through injection, buffer arrivals, arbitration wins and losses, link
// traversals, fault requeues/reroutes and delivery — the "why was message X
// slow" layer that aggregate counters (internal/obs) cannot answer.
//
// The tracer hooks the engine exclusively through the passive observer seams
// (noc.Observer, noc.ArbObserver, noc.FaultObserver); it never alters
// simulation behaviour, and with no tracer attached the engine takes the
// exact code path of an uninstrumented network. A Tracer belongs to one
// network and, like the network itself, is not safe for concurrent use.
//
// On top of the raw event stream the package provides a latency-breakdown
// analyzer (Analyze) that folds a trace into per-message and per-class
// queueing/arbitration-loss/link-time components, and exporters for the
// Chrome/Perfetto trace-event JSON format and compact CSV (export.go).
package trace

import (
	"fmt"

	"mlnoc/internal/noc"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds, in rough lifecycle order.
const (
	// KindInject marks a message leaving its source node's injection queue
	// and entering the network. Dur carries the source-queueing time
	// (InjectCycle - GenCycle).
	KindInject Kind = iota
	// KindEnqueue marks a message landing in a downstream router's input
	// buffer after a hop (derived from the grant; timestamped at arrival).
	KindEnqueue
	// KindArbWin marks a contested arbitration the message won. Competing
	// holds the rival slot set, NumCands the candidate count.
	KindArbWin
	// KindArbLoss marks a contested arbitration the message lost while at a
	// buffer head; WinPort/WinVC identify the slot the arbiter preferred.
	KindArbLoss
	// KindLink marks a granted link traversal: the message occupies output
	// port Out of router Router for Dur (= SizeFlits) cycles.
	KindLink
	// KindReroute marks a grant whose output deviated from the X-Y port — a
	// message actively routed around damage by a fault-aware routing.
	KindReroute
	// KindRequeue marks a message pulled out of harm's way by the fault
	// layer (off a killed link, or stranded by a table rebuild).
	KindRequeue
	// KindDeliver marks ejection at the destination node. Dur carries the
	// full generation-to-delivery latency.
	KindDeliver
	// KindUnreachable marks eviction with an unreachable-destination verdict.
	KindUnreachable

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInject:
		return "inject"
	case KindEnqueue:
		return "enqueue"
	case KindArbWin:
		return "arb-win"
	case KindArbLoss:
		return "arb-loss"
	case KindLink:
		return "link"
	case KindReroute:
		return "reroute"
	case KindRequeue:
		return "requeue"
	case KindDeliver:
		return "deliver"
	case KindUnreachable:
		return "unreachable"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one lifecycle event of a traced message. Fields beyond Kind,
// Cycle and MsgID are kind-specific; unused fields are zero (ports -1).
type Event struct {
	Kind  Kind
	Cycle int64
	MsgID uint64
	Src   noc.NodeID
	Dst   noc.NodeID
	Class noc.Class
	// Router is the router at which the event occurred.
	Router int
	// Port is the input port (buffer) the message occupied, or the node's
	// attach port for inject/deliver events.
	Port noc.PortID
	// VC is the virtual channel of the occupied buffer.
	VC int
	// Out is the arbitrated/granted output port (arb, link, reroute events).
	Out noc.PortID
	// Dur is a duration in cycles: link serialization for KindLink, source
	// queueing for KindInject, total latency for KindDeliver.
	Dur int64
	// NumCands is the number of competing candidates (arb events).
	NumCands int
	// Competing is the competing slot set of an arbitration as a bitmask:
	// bit int(port)*VCs+vc is set for every candidate (arb events).
	Competing uint64
	// WinPort and WinVC identify the arbiter's chosen slot (arb events).
	// WinPort is -1 when a matcher left the output idle (every candidate
	// lost).
	WinPort noc.PortID
	WinVC   int
}

// Config parameterizes a Tracer.
type Config struct {
	// Capacity is the event ring capacity; once full, the oldest events are
	// overwritten (default 1 << 16).
	Capacity int
	// SampleEvery traces only messages whose ID is a multiple of it (<= 1
	// traces every message). Sampling is per-message, never per-event: a
	// sampled message's lifecycle is always recorded completely (up to ring
	// eviction).
	SampleEvery uint64
}

func (c *Config) applyDefaults() {
	if c.Capacity <= 0 {
		c.Capacity = 1 << 16
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
}

// Tracer records lifecycle events of sampled messages into a fixed-capacity
// ring. Create and install one with Attach.
type Tracer struct {
	net    *noc.Network
	vcs    int
	sample uint64

	ring  []Event
	next  int
	total int64 // events recorded over the tracer's lifetime
}

// Attach creates a Tracer for net and installs it on the engine's observer
// seams. Attaching a tracer never changes simulation behaviour.
func Attach(net *noc.Network, cfg Config) *Tracer {
	cfg.applyDefaults()
	t := &Tracer{
		net:    net,
		vcs:    net.Config().VCs,
		sample: cfg.SampleEvery,
		ring:   make([]Event, 0, cfg.Capacity),
	}
	net.AddObserver(t)
	return t
}

// sampled reports whether the message is part of the trace sample.
func (t *Tracer) sampled(m *noc.Message) bool {
	return t.sample <= 1 || m.ID%t.sample == 0
}

func (t *Tracer) record(e Event) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % len(t.ring)
	}
	t.total++
}

// slotBit returns the Competing bitmask bit for a candidate slot.
func (t *Tracer) slotBit(p noc.PortID, vc int) uint64 {
	return 1 << (uint(p)*uint(t.vcs) + uint(vc))
}

// ObserveInject implements noc.Observer.
func (t *Tracer) ObserveInject(now int64, node *noc.Node, m *noc.Message) {
	if !t.sampled(m) {
		return
	}
	t.record(Event{
		Kind: KindInject, Cycle: now, MsgID: m.ID, Src: m.Src, Dst: m.Dst,
		Class: m.Class, Router: node.Router.ID(), Port: node.Port,
		VC: int(m.Class), Out: -1, Dur: now - m.GenCycle, WinPort: -1,
	})
}

// ObserveGrant implements noc.Observer: every grant becomes a link-traversal
// span, plus a derived enqueue event at the downstream buffer for hops and a
// reroute event when the output deviates from the X-Y port on a faulty
// network.
func (t *Tracer) ObserveGrant(now int64, r *noc.Router, out noc.PortID, c noc.Candidate) {
	m := c.Msg
	if !t.sampled(m) {
		return
	}
	base := Event{
		Cycle: now, MsgID: m.ID, Src: m.Src, Dst: m.Dst, Class: m.Class,
		Router: r.ID(), Port: c.Port, VC: c.VC, Out: out,
		Dur: int64(m.SizeFlits), WinPort: -1,
	}
	link := base
	link.Kind = KindLink
	t.record(link)
	if t.net.Faulty() && out != r.XYPort(m) {
		rr := base
		rr.Kind = KindReroute
		rr.Dur = 0
		t.record(rr)
	}
	if next := r.Neighbor(out); next != nil {
		enq := base
		enq.Kind = KindEnqueue
		enq.Cycle = now + int64(m.SizeFlits)
		enq.Router = next.ID()
		enq.Port = out.Opposite()
		enq.Out = -1
		enq.Dur = 0
		t.record(enq)
	}
}

// ObserveDeliver implements noc.Observer.
func (t *Tracer) ObserveDeliver(now int64, node *noc.Node, m *noc.Message) {
	if !t.sampled(m) {
		return
	}
	t.record(Event{
		Kind: KindDeliver, Cycle: now, MsgID: m.ID, Src: m.Src, Dst: m.Dst,
		Class: m.Class, Router: node.Router.ID(), Port: node.Port,
		VC: int(m.Class), Out: -1, Dur: now - m.GenCycle, WinPort: -1,
	})
}

// ObserveArb implements noc.ArbObserver: one win event for the chosen
// candidate and one loss event per defeated candidate, each carrying the
// competing slot set and the arbiter's chosen priority.
func (t *Tracer) ObserveArb(now int64, r *noc.Router, out noc.PortID, cands []noc.Candidate, chosen int) {
	var competing uint64
	for _, c := range cands {
		competing |= t.slotBit(c.Port, c.VC)
	}
	winPort, winVC := noc.PortID(-1), -1
	if chosen >= 0 && chosen < len(cands) {
		winPort, winVC = cands[chosen].Port, cands[chosen].VC
	}
	for i, c := range cands {
		if !t.sampled(c.Msg) {
			continue
		}
		kind := KindArbLoss
		if i == chosen {
			kind = KindArbWin
		}
		t.record(Event{
			Kind: kind, Cycle: now, MsgID: c.Msg.ID, Src: c.Msg.Src,
			Dst: c.Msg.Dst, Class: c.Msg.Class, Router: r.ID(), Port: c.Port,
			VC: c.VC, Out: out, NumCands: len(cands), Competing: competing,
			WinPort: winPort, WinVC: winVC,
		})
	}
}

// ObserveRequeue implements noc.FaultObserver.
func (t *Tracer) ObserveRequeue(now int64, r *noc.Router, p noc.PortID, m *noc.Message) {
	if !t.sampled(m) {
		return
	}
	t.record(Event{
		Kind: KindRequeue, Cycle: now, MsgID: m.ID, Src: m.Src, Dst: m.Dst,
		Class: m.Class, Router: r.ID(), Port: p, VC: int(m.Class), Out: -1,
		WinPort: -1,
	})
}

// ObserveUnreachable implements noc.FaultObserver.
func (t *Tracer) ObserveUnreachable(now int64, r *noc.Router, m *noc.Message) {
	if !t.sampled(m) {
		return
	}
	t.record(Event{
		Kind: KindUnreachable, Cycle: now, MsgID: m.ID, Src: m.Src, Dst: m.Dst,
		Class: m.Class, Router: r.ID(), Port: -1, VC: int(m.Class), Out: -1,
		WinPort: -1,
	})
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int { return len(t.ring) }

// Recorded returns the number of events recorded over the tracer's lifetime,
// including events since evicted from the ring.
func (t *Tracer) Recorded() int64 { return t.total }

// Dropped returns the number of events evicted by ring wrap-around.
func (t *Tracer) Dropped() int64 { return t.total - int64(len(t.ring)) }

// SampleEvery returns the tracer's message sampling period.
func (t *Tracer) SampleEvery() uint64 { return t.sample }

// Events returns the retained events in recording order (oldest first). The
// returned slice is a copy.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// VCs returns the virtual-channel count of the traced network, needed to
// decode Competing bitmasks.
func (t *Tracer) VCs() int { return t.vcs }
