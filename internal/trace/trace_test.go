package trace_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"mlnoc/internal/noc"
	"mlnoc/internal/trace"
)

// firstPolicy deterministically grants the first candidate, mirroring the
// policy the engine tests pin their regressions with.
type firstPolicy struct{}

func (firstPolicy) Name() string                                    { return "first" }
func (firstPolicy) Select(_ *noc.ArbContext, _ []noc.Candidate) int { return 0 }

// delivery is one entry of a delivery log used for bit-identical comparisons.
type delivery struct {
	cycle int64
	id    uint64
	hops  int
}

// runScenario drives the deterministic 3x3 mesh scenario from the engine's
// fault-inertness test, optionally with a tracer attached, and returns the
// exact delivery log plus the network and tracer for inspection.
func runScenario(traced bool, cfg trace.Config) ([]delivery, *noc.Network, *trace.Tracer) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 3, Height: 3, VCs: 2})
	net.SetPolicy(firstPolicy{})
	var tr *trace.Tracer
	if traced {
		tr = trace.Attach(net, cfg)
	}
	var log []delivery
	for _, c := range cores {
		c.Sink = func(now int64, m *noc.Message) {
			log = append(log, delivery{cycle: now, id: m.ID, hops: m.HopCount})
		}
	}
	id := uint64(0)
	for i := 0; i < 40; i++ {
		src := cores[i%len(cores)]
		dst := cores[(i*3+1)%len(cores)]
		if src == dst {
			continue
		}
		id++
		src.Inject(&noc.Message{ID: id, Dst: dst.ID, Class: noc.Class(i % 2), SizeFlits: 1 + i%4})
		net.Step()
	}
	net.Drain(10000)
	return log, net, tr
}

// TestTracedRunIsBitIdentical pins the tentpole's zero-cost contract: a run
// with the tracer attached produces the exact delivery trace (per-message
// delivery cycle, order and hop count) of an untraced run.
func TestTracedRunIsBitIdentical(t *testing.T) {
	base, baseNet, _ := runScenario(false, trace.Config{})
	traced, tracedNet, tr := runScenario(true, trace.Config{})
	if len(base) == 0 {
		t.Fatal("scenario delivered nothing")
	}
	if len(base) != len(traced) {
		t.Fatalf("delivery counts diverged: %d untraced, %d traced", len(base), len(traced))
	}
	for i := range base {
		if base[i] != traced[i] {
			t.Fatalf("delivery %d diverged: untraced %+v, traced %+v", i, base[i], traced[i])
		}
	}
	bs, ts := baseNet.Stats(), tracedNet.Stats()
	if bs.Delivered != ts.Delivered || bs.Latency.Mean() != ts.Latency.Mean() {
		t.Fatalf("stats diverged: delivered %d/%d, latency %v/%v",
			bs.Delivered, ts.Delivered, bs.Latency.Mean(), ts.Latency.Mean())
	}
	if tr.Recorded() == 0 {
		t.Fatal("tracer recorded nothing")
	}
}

// TestBreakdownIdentity pins the latency decomposition on a healthy network:
// every delivered message is analyzed, its Total equals the sum of its
// components, no component is negative, and the analyzer's overall mean
// matches the engine's own latency statistic.
func TestBreakdownIdentity(t *testing.T) {
	_, net, tr := runScenario(true, trace.Config{})
	b := trace.Analyze(tr)
	st := net.Stats()
	if int64(len(b.Msgs)) != st.Delivered {
		t.Fatalf("analyzed %d messages, engine delivered %d", len(b.Msgs), st.Delivered)
	}
	if b.Incomplete != 0 || b.InFlight != 0 || b.Unreachable != 0 {
		t.Fatalf("drained healthy run excluded messages: %d incomplete, %d in flight, %d unreachable",
			b.Incomplete, b.InFlight, b.Unreachable)
	}
	for _, m := range b.Msgs {
		if m.Total != m.SourceQueue+m.Queue+m.ArbLosses+m.Link {
			t.Fatalf("msg %d: total %d != srcq %d + queue %d + arb %d + link %d",
				m.ID, m.Total, m.SourceQueue, m.Queue, m.ArbLosses, m.Link)
		}
		if m.SourceQueue < 0 || m.Queue < 0 || m.ArbLosses < 0 || m.Link <= 0 {
			t.Fatalf("msg %d: negative component in %+v", m.ID, m)
		}
		if m.Total != m.DeliverCycle-(m.InjectCycle-m.SourceQueue) {
			t.Fatalf("msg %d: total %d does not span generation %d to delivery %d",
				m.ID, m.Total, m.InjectCycle-m.SourceQueue, m.DeliverCycle)
		}
		if m.Hops < 1 {
			t.Fatalf("msg %d delivered with %d link traversals", m.ID, m.Hops)
		}
	}
	// The engine accumulates its mean incrementally (Welford), the analyzer
	// sums then divides; agreement is up to floating-point reassociation.
	if got, want := b.Overall.Total.Mean, st.Latency.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("analyzer mean latency %v != engine mean %v", got, want)
	}
	if b.Overall.Count != len(b.Msgs) {
		t.Fatalf("overall count %d != %d messages", b.Overall.Count, len(b.Msgs))
	}
	if out := b.Render(); !strings.Contains(out, "all") {
		t.Fatalf("rendered breakdown missing overall row:\n%s", out)
	}
}

// TestSampling pins ID-modulo sampling: with SampleEvery=2 only even message
// IDs appear in the trace, and their lifecycles are still complete.
func TestSampling(t *testing.T) {
	_, _, tr := runScenario(true, trace.Config{SampleEvery: 2})
	if tr.SampleEvery() != 2 {
		t.Fatalf("SampleEvery = %d, want 2", tr.SampleEvery())
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("sampled trace is empty")
	}
	for _, e := range events {
		if e.MsgID%2 != 0 {
			t.Fatalf("unsampled message %d traced: %+v", e.MsgID, e)
		}
	}
	b := trace.AnalyzeEvents(events)
	if len(b.Msgs) == 0 || b.Incomplete != 0 {
		t.Fatalf("sampled lifecycles incomplete: %d analyzed, %d incomplete",
			len(b.Msgs), b.Incomplete)
	}
	for _, m := range b.Msgs {
		if m.ID%2 != 0 {
			t.Fatalf("analyzer produced record for unsampled message %d", m.ID)
		}
	}
}

// TestRingEviction pins the bounded-memory contract: a tiny ring keeps only
// the newest events, reports the eviction count, and the analyzer counts
// messages whose inject fell off the ring as incomplete instead of folding a
// truncated lifecycle into the aggregates.
func TestRingEviction(t *testing.T) {
	_, _, tr := runScenario(true, trace.Config{Capacity: 8})
	if tr.Len() != 8 {
		t.Fatalf("ring holds %d events, want capacity 8", tr.Len())
	}
	if tr.Dropped() <= 0 {
		t.Fatalf("Dropped = %d, want > 0 after wrap-around", tr.Dropped())
	}
	if tr.Recorded() != tr.Dropped()+int64(tr.Len()) {
		t.Fatalf("accounting broken: recorded %d != dropped %d + retained %d",
			tr.Recorded(), tr.Dropped(), tr.Len())
	}
	b := trace.Analyze(tr)
	if b.Incomplete == 0 {
		t.Fatal("no incomplete messages despite inject eviction")
	}
	for _, m := range b.Msgs {
		if m.InjectCycle == 0 && m.SourceQueue == 0 && m.Link == 0 {
			t.Fatalf("truncated lifecycle leaked into aggregates: %+v", m)
		}
	}
}

// TestArbLossEvents forces a two-candidate arbitration and checks the win and
// loss events carry the competing slot set and the arbiter's chosen priority.
func TestArbLossEvents(t *testing.T) {
	// 3x1 mesh: messages from the two edge routers, both bound for the middle
	// node, arrive at the middle router on the same cycle and compete for its
	// ejection (core) output from the west- and east-side input buffers.
	net, cores := noc.BuildMeshCores(noc.Config{Width: 3, Height: 1, VCs: 1})
	net.SetPolicy(firstPolicy{})
	tr := trace.Attach(net, trace.Config{})
	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	cores[2].Inject(&noc.Message{ID: 2, Dst: cores[1].ID, SizeFlits: 1})
	net.Drain(100)
	var wins, losses []trace.Event
	for _, e := range tr.Events() {
		switch e.Kind {
		case trace.KindArbWin:
			wins = append(wins, e)
		case trace.KindArbLoss:
			losses = append(losses, e)
		}
	}
	if len(wins) == 0 || len(losses) == 0 {
		t.Fatalf("contested arbitration not traced: %d wins, %d losses", len(wins), len(losses))
	}
	// The contested round: one candidate per side buffer, VC 0, with 1 VC per
	// port, so the competing mask is bit int(PortWest) plus bit int(PortEast).
	wantMask := uint64(1)<<uint(noc.PortWest) | uint64(1)<<uint(noc.PortEast)
	w, l := wins[0], losses[0]
	if w.Competing != wantMask || l.Competing != wantMask {
		t.Fatalf("competing masks %#x/%#x, want %#x", w.Competing, l.Competing, wantMask)
	}
	if w.NumCands != 2 || l.NumCands != 2 {
		t.Fatalf("candidate counts %d/%d, want 2", w.NumCands, l.NumCands)
	}
	if w.Out != noc.PortCore || l.Out != noc.PortCore {
		t.Fatalf("arbitration not for the ejection port: %+v vs %+v", w, l)
	}
	if w.MsgID == l.MsgID || w.Port == l.Port {
		t.Fatalf("win and loss describe the same candidate: %+v vs %+v", w, l)
	}
	// Both events must agree on the arbiter's chosen slot — the winner's.
	if w.WinPort != w.Port || w.WinVC != w.VC {
		t.Fatalf("win event disagrees with its own slot: %+v", w)
	}
	if l.WinPort != w.Port || l.WinVC != w.VC {
		t.Fatalf("loss event disagrees with win: %+v vs %+v", l, w)
	}
	if w.Cycle != l.Cycle {
		t.Fatalf("win and loss not from the same arbitration: %+v vs %+v", w, l)
	}
	// The analyzer charges the loser exactly its lost cycles.
	b := trace.Analyze(tr)
	charged := false
	for _, m := range b.Msgs {
		if m.ID == l.MsgID {
			charged = true
			if m.ArbLosses < 1 {
				t.Fatalf("losing msg %d charged %d arb-loss cycles, want >= 1", m.ID, m.ArbLosses)
			}
		}
	}
	if !charged {
		t.Fatalf("losing msg %d missing from the breakdown", l.MsgID)
	}
}

// TestChromeExport pins the trace-event JSON shape Perfetto loads: metadata,
// complete link slices, and paired async begin/end per message lifetime.
func TestChromeExport(t *testing.T) {
	_, _, tr := runScenario(true, trace.Config{})
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			ID   string         `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	phases := map[string]int{}
	begins, ends := map[string]bool{}, map[string]bool{}
	for _, e := range out.TraceEvents {
		phases[e.Ph]++
		switch e.Ph {
		case "X":
			if e.Dur <= 0 {
				t.Fatalf("link slice without duration: %+v", e)
			}
		case "b":
			begins[e.ID] = true
		case "e":
			ends[e.ID] = true
		}
	}
	for _, ph := range []string{"M", "X", "b", "e"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q events in export; phases: %v", ph, phases)
		}
	}
	// The drained run delivered everything: every async begin has its end.
	for id := range begins {
		if !ends[id] {
			t.Fatalf("message lifetime %s begun but never ended", id)
		}
	}
}

// TestCSVExport pins the compact CSV companion: a header plus one row per
// retained event.
func TestCSVExport(t *testing.T) {
	_, _, tr := runScenario(true, trace.Config{})
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if lines[0] != "cycle,kind,msg,src,dst,class,router,port,vc,out,dur,cands,competing,win_port,win_vc" {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	if got, want := len(lines)-1, tr.Len(); got != want {
		t.Fatalf("CSV has %d rows, tracer retains %d events", got, want)
	}
}

// benchStep drives a steady 4x4 mesh load; the traced/untraced pair
// quantifies the tracer's overhead and the observer seams' zero-cost-off
// claim (compare with: go test -bench Step -benchmem ./internal/trace/).
func benchStep(b *testing.B, traced bool) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 2, BufferCap: 8})
	net.SetPolicy(firstPolicy{})
	if traced {
		trace.Attach(net, trace.Config{})
	}
	id := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := cores[i%len(cores)]
		dst := cores[(i*5+3)%len(cores)]
		if src != dst {
			id++
			src.Inject(&noc.Message{ID: id, Dst: dst.ID, Class: noc.Class(i % 2), SizeFlits: 2})
		}
		net.Step()
	}
}

func BenchmarkStepUntraced(b *testing.B) { benchStep(b, false) }
func BenchmarkStepTraced(b *testing.B)   { benchStep(b, true) }
