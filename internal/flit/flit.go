// Package flit implements a flit-level virtual-channel wormhole NoC engine —
// the granularity of the Garnet model the paper builds on — as a validation
// substrate for the message-level engine in internal/noc.
//
// Packets are split into head/body/tail flits that traverse the mesh through
// per-VC flit buffers with credit-based flow control. A packet's flits can
// span several routers at once (true wormhole), so head-of-line blocking and
// congestion trees form exactly as in a hardware router. Output-port
// arbitration happens in switch allocation, once per flit per cycle, which is
// where the Arbiter hook sits; packet-level arbiters (FIFO, global-age, the
// paper's RL-inspired priorities) act on the head packet's descriptor.
//
// The engine's purpose is cross-validation: the repository's headline
// experiments run on the message-level engine, and the flit-level tests
// confirm the policy orderings (e.g. global-age < FIFO < round-robin in
// latency under contention) hold at this granularity too.
package flit

import (
	"fmt"

	"mlnoc/internal/noc"
)

// Kind is a flit's position within its packet.
type Kind uint8

// Flit kinds.
const (
	Head Kind = iota
	Body
	Tail
	// HeadTail is a single-flit packet.
	HeadTail
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "head-tail"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsHead reports whether the flit opens a packet.
func (k Kind) IsHead() bool { return k == Head || k == HeadTail }

// IsTail reports whether the flit closes a packet.
func (k Kind) IsTail() bool { return k == Tail || k == HeadTail }

// Flit is one link-width unit of a packet.
type Flit struct {
	Kind Kind
	// Seq is the flit's index within its packet (0 = head).
	Seq int
	// Pkt is the shared packet descriptor (reusing the message-level
	// descriptor so packet-level arbiters work unchanged).
	Pkt *noc.Message
}

// Candidate is one input virtual channel competing in switch allocation.
type Candidate struct {
	Port noc.PortID
	VC   int
	// Msg is the descriptor of the packet whose flit is at the buffer head.
	Msg *noc.Message
}

// Arbiter selects the winning input VC for an output port during switch
// allocation. It is invoked only with two or more candidates.
type Arbiter interface {
	Name() string
	Pick(now int64, routerID int, out noc.PortID, cands []Candidate) int
}
