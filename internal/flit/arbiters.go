package flit

import (
	"math/rand"

	"mlnoc/internal/core"
	"mlnoc/internal/noc"
)

// Switch-allocation arbiters for the flit-level engine. They mirror the
// message-level policies in internal/arb and internal/core, acting on the
// head packet's descriptor.

// FIFO grants the packet that arrived at the router earliest.
type FIFO struct{}

// Name implements Arbiter.
func (FIFO) Name() string { return "fifo" }

// Pick implements Arbiter.
func (FIFO) Pick(_ int64, _ int, _ noc.PortID, cands []Candidate) int {
	best := 0
	for i, c := range cands[1:] {
		if c.Msg.ArrivalCycle < cands[best].Msg.ArrivalCycle {
			best = i + 1
		}
	}
	return best
}

// GlobalAge grants the packet that entered the network earliest.
type GlobalAge struct{}

// Name implements Arbiter.
func (GlobalAge) Name() string { return "global-age" }

// Pick implements Arbiter.
func (GlobalAge) Pick(_ int64, _ int, _ noc.PortID, cands []Candidate) int {
	best := 0
	for i, c := range cands[1:] {
		if c.Msg.InjectCycle < cands[best].Msg.InjectCycle {
			best = i + 1
		}
	}
	return best
}

// RoundRobin rotates a per-(router, output) pointer over input-buffer slots.
type RoundRobin struct {
	vcs int
	ptr map[int]int // routerID*MaxPorts+out -> pointer
}

// NewRoundRobin creates a round-robin switch allocator for a mesh with the
// given VC count.
func NewRoundRobin(vcs int) *RoundRobin {
	return &RoundRobin{vcs: vcs, ptr: make(map[int]int)}
}

// Name implements Arbiter.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Arbiter.
func (p *RoundRobin) Pick(_ int64, routerID int, out noc.PortID, cands []Candidate) int {
	key := routerID*noc.MaxPorts + int(out)
	nslots := noc.MaxPorts * p.vcs
	ptr := p.ptr[key]
	best, bestDist := 0, nslots+1
	for i, c := range cands {
		slot := int(c.Port)*p.vcs + c.VC
		d := (slot - ptr + nslots) % nslots
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	p.ptr[key] = (int(cands[best].Port)*p.vcs + cands[best].VC + 1) % nslots
	return best
}

// Random grants uniformly at random.
type Random struct{ Rng *rand.Rand }

// Name implements Arbiter.
func (Random) Name() string { return "random" }

// Pick implements Arbiter.
func (p Random) Pick(_ int64, _ int, _ noc.PortID, cands []Candidate) int {
	return p.Rng.Intn(len(cands))
}

// RLInspired applies the paper's Section 3.2 mesh priority function
// (local age and hop count, shifted and added) at switch allocation.
type RLInspired struct{ P *core.RLInspiredMesh }

// NewRLInspired wraps a mesh RL-inspired priority (e.g.
// core.NewRLInspiredMesh8x8()).
func NewRLInspired(p *core.RLInspiredMesh) RLInspired { return RLInspired{P: p} }

// Name implements Arbiter.
func (a RLInspired) Name() string { return a.P.Name() }

// Pick implements Arbiter.
func (a RLInspired) Pick(now int64, _ int, _ noc.PortID, cands []Candidate) int {
	best, bestP := 0, a.P.Priority(now, cands[0].Msg)
	n := len(cands)
	start := int(now % int64(n))
	best, bestP = start, a.P.Priority(now, cands[start].Msg)
	for k := 1; k < n; k++ {
		i := (start + k) % n
		if p := a.P.Priority(now, cands[i].Msg); p > bestP {
			best, bestP = i, p
		}
	}
	return best
}
