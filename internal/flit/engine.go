package flit

import (
	"fmt"

	"mlnoc/internal/noc"
	"mlnoc/internal/stats"
)

// Config describes a flit-level mesh.
type Config struct {
	// Width and Height are the mesh dimensions; one endpoint per router.
	Width, Height int
	// VCs is the number of virtual channels (message classes) per port.
	VCs int
	// BufFlits is the per-VC input buffer capacity in flits. The default of
	// 4 cannot hold a 5-flit data packet, so long packets genuinely span
	// routers (wormhole).
	BufFlits int
}

func (c *Config) applyDefaults() {
	if c.VCs <= 0 {
		c.VCs = 1
	}
	if c.BufFlits <= 0 {
		c.BufFlits = 4
	}
}

// vcIn is one input virtual channel: a flit FIFO plus the switching state of
// the packet currently draining from its head.
type vcIn struct {
	q []Flit
	// routeValid marks that the packet at the queue head has computed its
	// route and (once granted) owns its output VC.
	routeValid bool
	route      noc.PortID
	vcOwned    bool // this packet holds outVCOwner[route][vc]
}

type router struct {
	id   int
	x, y int
	in   [noc.MaxPorts][]vcIn
	has  [noc.MaxPorts]bool
	// outOwner[p][vc] is the packet currently streaming through output VC
	// (p, vc), nil when free.
	outOwner [noc.MaxPorts][]*noc.Message
	// credits[p][vc] counts free flit slots in the downstream buffer.
	credits [noc.MaxPorts][]int
}

type node struct {
	id    int
	queue []*noc.Message
	cur   *noc.Message
	seq   int
}

type arrival struct {
	r    *router
	port noc.PortID
	vc   int
	f    Flit
}

type creditReturn struct {
	r    *router
	port noc.PortID
	vc   int
}

// Stats aggregates flit-level measurements.
type Stats struct {
	Injected   int64 // packets handed to Inject
	Delivered  int64 // packets fully ejected at their destination
	Latency    stats.Accumulator
	FlitsMoved int64
}

// Engine is a flit-level mesh simulation.
type Engine struct {
	cfg     Config
	arb     Arbiter
	routers []*router
	nodes   []*node
	cycle   int64

	nextArrivals []arrival
	nextCredits  []creditReturn

	stats  Stats
	nextID uint64

	// flitsReceived tracks per-packet delivered flit counts (ordering and
	// completeness checks).
	flitsReceived map[uint64]int
}

// New builds a flit-level mesh running the given arbiter.
func New(cfg Config, arb Arbiter) *Engine {
	cfg.applyDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("flit: mesh dimensions must be positive")
	}
	if arb == nil {
		panic("flit: engine needs an arbiter")
	}
	e := &Engine{cfg: cfg, arb: arb, flitsReceived: make(map[uint64]int)}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			r := &router{id: y*cfg.Width + x, x: x, y: y}
			e.routers = append(e.routers, r)
			e.nodes = append(e.nodes, &node{id: r.id})
		}
	}
	for _, r := range e.routers {
		connect := func(p noc.PortID, ok bool) {
			if !ok && p != noc.PortCore {
				return
			}
			r.has[p] = true
			r.in[p] = make([]vcIn, cfg.VCs)
			r.outOwner[p] = make([]*noc.Message, cfg.VCs)
			r.credits[p] = make([]int, cfg.VCs)
			for vc := 0; vc < cfg.VCs; vc++ {
				// Ejection (core port) is never credit-limited.
				if p == noc.PortCore {
					r.credits[p][vc] = 1 << 30
				} else {
					r.credits[p][vc] = cfg.BufFlits
				}
			}
		}
		connect(noc.PortCore, true)
		connect(noc.PortNorth, r.y > 0)
		connect(noc.PortSouth, r.y < cfg.Height-1)
		connect(noc.PortWest, r.x > 0)
		connect(noc.PortEast, r.x < cfg.Width-1)
	}
	return e
}

// Cycle returns the current cycle.
func (e *Engine) Cycle() int64 { return e.cycle }

// Stats returns the accumulated statistics.
func (e *Engine) Stats() *Stats { return &e.stats }

// NumNodes returns the endpoint count (one per router).
func (e *Engine) NumNodes() int { return len(e.nodes) }

// Inject queues a packet of the given flit count from node src to node dst.
func (e *Engine) Inject(src, dst int, class noc.Class, flits int) {
	if flits <= 0 {
		panic("flit: packet needs at least one flit")
	}
	if int(class) >= e.cfg.VCs {
		panic("flit: class out of VC range")
	}
	if src == dst {
		panic("flit: self-send not supported at flit level")
	}
	e.nextID++
	sr, dr := e.routers[src], e.routers[dst]
	m := &noc.Message{
		ID:        e.nextID,
		Src:       noc.NodeID(src),
		Dst:       noc.NodeID(dst),
		Class:     class,
		SizeFlits: flits,
		GenCycle:  e.cycle,
		Distance:  abs(sr.x-dr.x) + abs(sr.y-dr.y),
	}
	e.nodes[src].queue = append(e.nodes[src].queue, m)
	e.stats.Injected++
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (e *Engine) neighbor(r *router, p noc.PortID) *router {
	switch p {
	case noc.PortNorth:
		return e.routers[(r.y-1)*e.cfg.Width+r.x]
	case noc.PortSouth:
		return e.routers[(r.y+1)*e.cfg.Width+r.x]
	case noc.PortWest:
		return e.routers[r.y*e.cfg.Width+r.x-1]
	case noc.PortEast:
		return e.routers[r.y*e.cfg.Width+r.x+1]
	}
	return nil
}

// route computes the X-Y output port for packet m at router r.
func (e *Engine) route(r *router, m *noc.Message) noc.PortID {
	d := e.routers[m.Dst]
	switch {
	case d.x > r.x:
		return noc.PortEast
	case d.x < r.x:
		return noc.PortWest
	case d.y > r.y:
		return noc.PortSouth
	case d.y < r.y:
		return noc.PortNorth
	}
	return noc.PortCore
}

// Step advances one cycle: land scheduled arrivals and credits, inject from
// nodes, then run route computation / VC allocation / switch allocation and
// launch flits.
func (e *Engine) Step() {
	e.cycle++

	// Land flits and credits scheduled during the previous cycle.
	arrivals := e.nextArrivals
	e.nextArrivals = e.nextArrivals[len(e.nextArrivals):]
	for _, a := range arrivals {
		buf := &a.r.in[a.port][a.vc]
		if len(buf.q) >= e.cfg.BufFlits {
			panic("flit: buffer overflow — credit protocol violated")
		}
		if a.f.Kind.IsHead() {
			a.f.Pkt.ArrivalCycle = e.cycle
		}
		buf.q = append(buf.q, a.f)
	}
	credits := e.nextCredits
	e.nextCredits = e.nextCredits[len(e.nextCredits):]
	for _, c := range credits {
		c.r.credits[c.port][c.vc]++
	}

	// Injection: each node feeds at most one flit per cycle into its local
	// input buffer.
	for _, n := range e.nodes {
		r := e.routers[n.id]
		if n.cur == nil {
			if len(n.queue) == 0 {
				continue
			}
			// Start the next packet only if its VC buffer can take the head.
			m := n.queue[0]
			if len(r.in[noc.PortCore][m.Class].q) >= e.cfg.BufFlits {
				continue
			}
			n.cur, n.seq = m, 0
			copy(n.queue, n.queue[1:])
			n.queue = n.queue[:len(n.queue)-1]
			m.InjectCycle = e.cycle
			m.HopCount = 0
		}
		m := n.cur
		buf := &r.in[noc.PortCore][m.Class]
		if len(buf.q) >= e.cfg.BufFlits {
			continue
		}
		f := Flit{Seq: n.seq, Pkt: m}
		switch {
		case m.SizeFlits == 1:
			f.Kind = HeadTail
		case n.seq == 0:
			f.Kind = Head
		case n.seq == m.SizeFlits-1:
			f.Kind = Tail
		default:
			f.Kind = Body
		}
		if f.Kind.IsHead() {
			m.ArrivalCycle = e.cycle
		}
		buf.q = append(buf.q, f)
		n.seq++
		if n.seq == m.SizeFlits {
			n.cur = nil
		}
	}

	// Route computation and VC allocation for packets at buffer heads.
	for _, r := range e.routers {
		for p := noc.PortID(0); p < noc.MaxPorts; p++ {
			if !r.has[p] {
				continue
			}
			for vc := range r.in[p] {
				buf := &r.in[p][vc]
				if len(buf.q) == 0 {
					continue
				}
				front := buf.q[0]
				if front.Kind.IsHead() && !buf.routeValid {
					buf.route = e.route(r, front.Pkt)
					buf.routeValid = true
					buf.vcOwned = false
				}
				if buf.routeValid && !buf.vcOwned {
					// VC allocation: acquire ownership of (route, class).
					owner := r.outOwner[buf.route][vc]
					if owner == nil {
						r.outOwner[buf.route][vc] = front.Pkt
						buf.vcOwned = true
					} else if owner == front.Pkt {
						buf.vcOwned = true
					}
				}
			}
		}
	}

	// Switch allocation: one flit per output port, one per input port.
	var cands []Candidate
	for _, r := range e.routers {
		var inUsed [noc.MaxPorts]bool
		for out := noc.PortID(0); out < noc.MaxPorts; out++ {
			if !r.has[out] {
				continue
			}
			cands = cands[:0]
			for p := noc.PortID(0); p < noc.MaxPorts; p++ {
				if !r.has[p] || inUsed[p] {
					continue
				}
				for vc := range r.in[p] {
					buf := &r.in[p][vc]
					if len(buf.q) == 0 || !buf.routeValid || !buf.vcOwned || buf.route != out {
						continue
					}
					if r.credits[out][vc] <= 0 {
						continue
					}
					cands = append(cands, Candidate{Port: p, VC: vc, Msg: buf.q[0].Pkt})
				}
			}
			if len(cands) == 0 {
				continue
			}
			choice := 0
			if len(cands) > 1 {
				choice = e.arb.Pick(e.cycle, r.id, out, cands)
				if choice < 0 || choice >= len(cands) {
					panic(fmt.Sprintf("flit: arbiter %s returned %d of %d", e.arb.Name(), choice, len(cands)))
				}
			}
			c := cands[choice]
			e.launch(r, c.Port, c.VC, out)
			inUsed[c.Port] = true
		}
	}
}

// launch moves the head flit of (in, vc) through output out.
func (e *Engine) launch(r *router, in noc.PortID, vc int, out noc.PortID) {
	buf := &r.in[in][vc]
	f := buf.q[0]
	copy(buf.q, buf.q[1:])
	buf.q = buf.q[:len(buf.q)-1]
	e.stats.FlitsMoved++

	// Return a credit upstream for the freed buffer slot (not for the
	// injection buffer, which the local node reads directly).
	if in.IsDirection() {
		up := e.neighbor(r, in)
		e.nextCredits = append(e.nextCredits, creditReturn{r: up, port: in.Opposite(), vc: vc})
	}

	if f.Kind.IsTail() {
		buf.routeValid = false
		buf.vcOwned = false
		r.outOwner[out][vc] = nil
	}

	if out == noc.PortCore {
		// Ejection: flits leave the network; the packet completes when its
		// tail ejects.
		e.flitsReceived[f.Pkt.ID]++
		if f.Kind.IsTail() {
			if got := e.flitsReceived[f.Pkt.ID]; got != f.Pkt.SizeFlits {
				panic(fmt.Sprintf("flit: packet %d ejected %d of %d flits", f.Pkt.ID, got, f.Pkt.SizeFlits))
			}
			delete(e.flitsReceived, f.Pkt.ID)
			e.stats.Delivered++
			e.stats.Latency.Add(float64(e.cycle - f.Pkt.GenCycle))
		}
		return
	}

	if f.Kind.IsHead() {
		f.Pkt.HopCount++
	}
	r.credits[out][vc]--
	e.nextArrivals = append(e.nextArrivals, arrival{
		r: e.neighbor(r, out), port: out.Opposite(), vc: vc, f: f,
	})
}

// Run advances the engine by n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// Quiescent reports whether no packets remain anywhere in the system.
func (e *Engine) Quiescent() bool {
	if len(e.nextArrivals) > 0 {
		return false
	}
	for _, n := range e.nodes {
		if n.cur != nil || len(n.queue) > 0 {
			return false
		}
	}
	for _, r := range e.routers {
		for p := noc.PortID(0); p < noc.MaxPorts; p++ {
			if !r.has[p] {
				continue
			}
			for vc := range r.in[p] {
				if len(r.in[p][vc].q) > 0 {
					return false
				}
			}
		}
	}
	return true
}

// Drain steps until quiescent or maxCycles elapse, reporting success.
func (e *Engine) Drain(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if e.Quiescent() {
			return true
		}
		e.Step()
	}
	return e.Quiescent()
}
