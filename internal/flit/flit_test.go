package flit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlnoc/internal/core"
	"mlnoc/internal/noc"
)

func TestSinglePacketTiming(t *testing.T) {
	// One 5-flit packet across 3 hops on an empty 4x1 line: head needs
	// 1 cycle per stage per hop, tail follows 4 cycles behind.
	e := New(Config{Width: 4, Height: 1, VCs: 1}, FIFO{})
	e.Inject(0, 3, 0, 5)
	if !e.Drain(200) {
		t.Fatal("did not drain")
	}
	st := e.Stats()
	if st.Delivered != 1 {
		t.Fatalf("delivered %d", st.Delivered)
	}
	// Lower bound: serialization (5 flits) + path traversal (3 links).
	lat := st.Latency.Mean()
	if lat < 8 || lat > 40 {
		t.Fatalf("latency %v outside plausible single-packet range", lat)
	}
	if st.FlitsMoved < 5*4 { // 5 flits times (3 links + ejection)
		t.Fatalf("flits moved %d", st.FlitsMoved)
	}
}

func TestKindStringsAndPredicates(t *testing.T) {
	if !Head.IsHead() || !HeadTail.IsHead() || Body.IsHead() || Tail.IsHead() {
		t.Fatal("IsHead wrong")
	}
	if !Tail.IsTail() || !HeadTail.IsTail() || Head.IsTail() || Body.IsTail() {
		t.Fatal("IsTail wrong")
	}
	for _, k := range []Kind{Head, Body, Tail, HeadTail, Kind(9)} {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
}

func TestConservationUnderLoad(t *testing.T) {
	e := New(Config{Width: 4, Height: 4, VCs: 2}, FIFO{})
	rng := rand.New(rand.NewSource(3))
	n := 0
	for i := 0; i < 1500; i++ {
		if rng.Float64() < 0.4 {
			src := rng.Intn(16)
			dst := rng.Intn(16)
			if dst == src {
				dst = (dst + 1) % 16
			}
			size := 1
			if rng.Intn(3) == 0 {
				size = 5
			}
			e.Inject(src, dst, noc.Class(rng.Intn(2)), size)
			n++
		}
		e.Step()
	}
	if !e.Drain(200000) {
		t.Fatal("network did not drain")
	}
	if e.Stats().Delivered != int64(n) {
		t.Fatalf("delivered %d of %d packets", e.Stats().Delivered, n)
	}
}

// TestWormholeSpanning: with 4-flit buffers, a 5-flit packet cannot fit in
// one buffer, so delivery requires flits in multiple routers simultaneously;
// the engine's internal ordering assertions (panic on out-of-order or
// incomplete ejection) double as the correctness check.
func TestWormholeSpanning(t *testing.T) {
	e := New(Config{Width: 6, Height: 1, VCs: 1, BufFlits: 2}, FIFO{})
	for i := 0; i < 10; i++ {
		e.Inject(0, 5, 0, 5)
	}
	if !e.Drain(5000) {
		t.Fatal("did not drain")
	}
	if e.Stats().Delivered != 10 {
		t.Fatalf("delivered %d of 10", e.Stats().Delivered)
	}
}

// TestNoVCInterleaving: two same-class packets converging on one link must
// not interleave flits; the per-packet ejection counter panics if they do.
func TestNoVCInterleaving(t *testing.T) {
	e := New(Config{Width: 3, Height: 3, VCs: 1}, NewRoundRobin(1))
	// Both packets target node 5 (row 1, col 2) through router (1,1).
	e.Inject(3, 5, 0, 5) // west neighbor of center
	e.Inject(1, 5, 0, 5) // north neighbor of center
	if !e.Drain(1000) {
		t.Fatal("did not drain")
	}
	if e.Stats().Delivered != 2 {
		t.Fatalf("delivered %d of 2", e.Stats().Delivered)
	}
}

func TestQuickFlitConservation(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(Config{Width: 3, Height: 3, VCs: 2, BufFlits: 3}, GlobalAge{})
		n := int(n8)%60 + 1
		for i := 0; i < n; i++ {
			src := rng.Intn(9)
			dst := rng.Intn(9)
			if dst == src {
				dst = (dst + 1) % 9
			}
			e.Inject(src, dst, noc.Class(rng.Intn(2)), 1+rng.Intn(5))
			e.Step()
		}
		return e.Drain(100000) && e.Stats().Delivered == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyOrderingCrossValidation is the reason this engine exists: at
// flit granularity, the policy ordering of the message-level experiments
// must hold — global-age below FIFO below round-robin in average latency
// under contention, with the RL-inspired priority close to global-age.
func TestPolicyOrderingCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	run := func(mk func() Arbiter) float64 {
		e := New(Config{Width: 8, Height: 8, VCs: 3}, mk())
		rng := rand.New(rand.NewSource(11))
		const rate = 0.35 // flits/node/cycle offered, near saturation
		for i := 0; i < 12000; i++ {
			for nd := 0; nd < e.NumNodes(); nd++ {
				size := 1
				if rng.Float64() < 0.3 {
					size = 5
				}
				if rng.Float64() < rate/2.2 {
					dst := rng.Intn(e.NumNodes() - 1)
					if dst >= nd {
						dst++
					}
					e.Inject(nd, dst, noc.Class(rng.Intn(3)), size)
				}
			}
			e.Step()
		}
		e.Drain(100000)
		return e.Stats().Latency.Mean()
	}
	fifo := run(func() Arbiter { return FIFO{} })
	ga := run(func() Arbiter { return GlobalAge{} })
	rr := run(func() Arbiter { return NewRoundRobin(3) })
	rl := run(func() Arbiter { return NewRLInspired(core.NewRLInspiredMesh8x8()) })

	t.Logf("flit-level avg latency: rr=%.1f fifo=%.1f rl=%.1f ga=%.1f", rr, fifo, rl, ga)
	if !(ga < fifo) {
		t.Errorf("global-age (%.1f) not better than FIFO (%.1f) at flit level", ga, fifo)
	}
	if !(ga < rr) {
		t.Errorf("global-age (%.1f) not better than round-robin (%.1f) at flit level", ga, rr)
	}
	if !(rl < fifo*1.05) {
		t.Errorf("RL-inspired (%.1f) much worse than FIFO (%.1f) at flit level", rl, fifo)
	}
}

func TestArbiterNames(t *testing.T) {
	for _, a := range []Arbiter{
		FIFO{}, GlobalAge{}, NewRoundRobin(2),
		Random{Rng: rand.New(rand.NewSource(1))},
		NewRLInspired(core.NewRLInspiredMesh4x4()),
	} {
		if a.Name() == "" {
			t.Errorf("%T empty name", a)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	e := New(Config{Width: 2, Height: 2, VCs: 1}, FIFO{})
	for _, f := range []func(){
		func() { e.Inject(0, 1, 0, 0) }, // zero flits
		func() { e.Inject(0, 1, 5, 1) }, // class out of range
		func() { e.Inject(1, 1, 0, 1) }, // self send
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEngineValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil arbiter accepted")
			}
		}()
		New(Config{Width: 2, Height: 2}, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-size mesh accepted")
			}
		}()
		New(Config{}, FIFO{})
	}()
}
