GO ?= go

.PHONY: build test race vet verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the library packages; the obs registry and the parallel sweep
# telemetry are explicitly exercised under -race by internal/experiments.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# The PR gate: everything that must be green before merging.
verify: vet build test race

bench:
	$(GO) test -bench=. -benchmem

clean:
	$(GO) clean ./...
