GO ?= go
GOFMT ?= gofmt

.PHONY: build test race vet fmt verify bench bench-diff bench-paper serve-smoke race-shard clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the library packages; the obs registry, the parallel sweep
# telemetry and the fault-injection tests are explicitly exercised under
# -race by internal/experiments and internal/fault. The race detector runs
# ~10x slower than a plain test, so give the heavyweight sweep package more
# than the default 10m.
race:
	$(GO) test -race -timeout 20m ./internal/...

vet:
	$(GO) vet ./...

# Fail if any tracked Go file is not gofmt-clean.
fmt:
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The PR gate: everything that must be green before merging.
verify: fmt vet build test race

# Refresh the hot-path benchmark snapshot (ns/op, B/op, allocs/op for the
# BenchmarkHot* suite). bench-diff compares a fresh run against the committed
# snapshot and exits 1 on a >25% regression in ns/op, allocs/op, or bytes/op
# (any alloc growth from a zero-alloc baseline fails outright); CI runs it
# non-gating.
bench:
	$(GO) run ./cmd/bench -out BENCH_9.json -benchtime 2s

bench-diff:
	$(GO) run ./cmd/bench -diff BENCH_9.json

# Race-check the sharded stepping engine specifically: the shard-invariance
# and active-set-invariance suites in internal/noc and internal/fault drive
# the two-phase engine at K in {2,4,8} on mesh and torus, healthy and faulted,
# with active-set stepping both on and off, so any cross-shard data race in
# phase 1 or in the activity-bitmap maintenance surfaces here. Split from
# `race` so CI can gate on it by name.
race-shard:
	$(GO) test -race -run 'ShardInvariance|TorusConservation|TorusFaultConservation|ActiveSet' ./internal/noc/ ./internal/fault/

# Full benchmark sweep across every package (slow; not snapshot-tracked).
bench-paper:
	$(GO) test -bench=. -benchmem ./...

# End-to-end check of the simulation daemon: start it on a loopback port,
# submit a tiny deterministic sweep twice over real HTTP, require the second
# submission to be a byte-identical cache hit, and check the health endpoints.
serve-smoke:
	$(GO) run ./cmd/simd -smoke

clean:
	$(GO) clean ./...
