// Package mlnoc's benchmarks regenerate every table and figure of the paper's
// evaluation, printing the same rows/series the paper reports (values are
// shapes, not the authors' testbed numbers — see EXPERIMENTS.md).
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Set MLNOC_BENCH_SCALE=full for paper-length runs (much slower).
//
// Expensive artifacts (the APU policy sweep, the trained APU agent) are
// computed once and shared between the benchmarks that report different
// views of them (Fig. 9 and Fig. 10 share one sweep, as in the paper).
package mlnoc

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"mlnoc/internal/experiments"
)

func benchScale() experiments.Scale {
	if os.Getenv("MLNOC_BENCH_SCALE") == "full" {
		return experiments.Full()
	}
	return experiments.Quick()
}

// once-caches for artifacts shared across benchmarks.
var (
	meshOnce sync.Once
	mesh4    *experiments.MeshStudyResult
	mesh8    *experiments.MeshStudyResult

	execOnce  sync.Once
	execSweep *experiments.ExecSweepResult

	printMu   sync.Mutex
	printSeen = map[string]bool{}
)

// printOnce prints a rendered experiment exactly once per process, no matter
// how many calibration rounds the benchmark harness runs.
func printOnce(name string, render func() string) {
	printMu.Lock()
	defer printMu.Unlock()
	if printSeen[name] {
		return
	}
	printSeen[name] = true
	fmt.Println()
	fmt.Print(render())
}

func meshStudies() (*experiments.MeshStudyResult, *experiments.MeshStudyResult) {
	meshOnce.Do(func() {
		sc := benchScale()
		mesh4 = experiments.MeshStudy(4, sc)
		mesh8 = experiments.MeshStudy(8, sc)
	})
	return mesh4, mesh8
}

func sweep() *experiments.ExecSweepResult {
	execOnce.Do(func() {
		execSweep = experiments.ExecSweep(benchScale(), true)
	})
	return execSweep
}

// BenchmarkFig4_HeatmapMesh trains the 60-input mesh agent and extracts its
// weight heatmap (Fig. 4). The reported metric is the dominance ratio of the
// local-age row over the payload-size row: the paper's qualitative reading is
// that local age (and hop count) dominate.
func BenchmarkFig4_HeatmapMesh(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		m4, _ := meshStudies()
		h := m4.Heatmap
		ratio = h.RowMean(1) / (h.RowMean(0) + 1e-9) // local age / payload
		printOnce("fig4", m4.RenderHeatmap)
	}
	b.ReportMetric(ratio, "localage/payload")
}

// BenchmarkFig5_MeshLatency reproduces Fig. 5: average message latency of
// FIFO, RL-inspired, NN and Global-age on the 4x4 and 8x8 meshes, normalized
// to Global-age.
func BenchmarkFig5_MeshLatency(b *testing.B) {
	var fifo4, fifo8, rl8 float64
	for i := 0; i < b.N; i++ {
		m4, m8 := meshStudies()
		fifo4, fifo8, rl8 = m4.Normalized[0], m8.Normalized[0], m8.Normalized[1]
		printOnce("fig5", func() string { return m4.Render() + m8.Render() })
	}
	b.ReportMetric(fifo4, "fifo/GA@4x4")
	b.ReportMetric(fifo8, "fifo/GA@8x8")
	b.ReportMetric(rl8, "rl/GA@8x8")
}

// BenchmarkFig7_HeatmapAPU trains the 504-input APU agent on the Bfs model
// and extracts its Fig. 7 heatmap with the Section 4.6 per-port sign
// analysis.
func BenchmarkFig7_HeatmapAPU(b *testing.B) {
	var dominance float64
	for i := 0; i < b.N; i++ {
		h := experiments.APUHeatmap(benchScale())
		ranked := h.RankedRows()
		dominance = h.RowMean(ranked[0])
		printOnce("fig7", func() string { return experiments.RenderAPUHeatmap(h) })
	}
	b.ReportMetric(dominance, "top-row-mean|w|")
}

// BenchmarkFig9_AvgExecTime reproduces Fig. 9: average program execution time
// of seven arbitration policies over the nine Table 1 workloads, normalized
// to Global-age.
func BenchmarkFig9_AvgExecTime(b *testing.B) {
	var rl, rr float64
	for i := 0; i < b.N; i++ {
		r := sweep()
		rl = r.MeanNormAvg[indexOf(b, r.Policies, "RL-inspired")]
		rr = r.MeanNormAvg[indexOf(b, r.Policies, "Round-robin")]
		printOnce("fig9", r.RenderAvg)
	}
	b.ReportMetric(rl, "rl-mean-norm")
	b.ReportMetric(rr/rl, "rr/rl")
}

// BenchmarkFig10_TailExecTime reproduces Fig. 10: tail (slowest-quadrant)
// program execution time, normalized to Global-age. It shares the Fig. 9
// sweep.
func BenchmarkFig10_TailExecTime(b *testing.B) {
	var rl, rr float64
	for i := 0; i < b.N; i++ {
		r := sweep()
		rl = r.MeanNormTail[indexOf(b, r.Policies, "RL-inspired")]
		rr = r.MeanNormTail[indexOf(b, r.Policies, "Round-robin")]
		printOnce("fig10", r.RenderTail)
	}
	b.ReportMetric(rl, "rl-mean-norm")
	b.ReportMetric(rr/rl, "rr/rl")
}

// BenchmarkFig11_MixedWorkloads reproduces Fig. 11: execution time for the
// 4L0H..0L4H application mixes. The reported metric contrasts the policy
// spread at 0L4H (congested) with 4L0H (under-utilized), which should be
// near zero.
func BenchmarkFig11_MixedWorkloads(b *testing.B) {
	var spreadIdle, spreadBusy float64
	for i := 0; i < b.N; i++ {
		r := experiments.MixedWorkloads(benchScale(), false)
		spreadIdle = spread(r.NormAvg[0])
		spreadBusy = spread(r.NormAvg[4])
		printOnce("fig11", r.Render)
	}
	b.ReportMetric(spreadIdle, "spread@4L0H")
	b.ReportMetric(spreadBusy, "spread@0L4H")
}

// BenchmarkFig12_RewardFunctions reproduces Fig. 12: training curves for the
// three Section 6.3 reward functions. Only global_age should converge to low
// latency.
func BenchmarkFig12_RewardFunctions(b *testing.B) {
	var ga, acc float64
	for i := 0; i < b.N; i++ {
		r := experiments.RewardCurves(benchScale())
		ga = final(r.Curves[0])
		acc = final(r.Curves[1])
		printOnce("fig12", r.Render)
	}
	b.ReportMetric(ga, "global_age-final")
	b.ReportMetric(acc/ga, "acc_latency/global_age")
}

// BenchmarkFig13_FeatureSelection reproduces Fig. 13: training curves with a
// single input feature at a time. Local age should be the best single
// feature; payload size the worst.
func BenchmarkFig13_FeatureSelection(b *testing.B) {
	var la, pl float64
	for i := 0; i < b.N; i++ {
		r := experiments.FeatureCurves(benchScale())
		pl = final(r.Curves[0]) // payload
		la = final(r.Curves[1]) // localage
		printOnce("fig13", r.Render)
	}
	b.ReportMetric(la, "localage-final")
	b.ReportMetric(pl/la, "payload/localage")
}

// BenchmarkTable3_Synthesis evaluates the gate-level cost model for the Table
// 3 designs. This one is pure arithmetic and fast, so it also exercises the
// model under b.N.
func BenchmarkTable3_Synthesis(b *testing.B) {
	var r *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3()
	}
	printOnce("table3", r.Render)
	nn, prop := r.Reports[0], r.Reports[2]
	b.ReportMetric(nn.LatencyNS, "nn-ns")
	b.ReportMetric(nn.AreaMM2/prop.AreaMM2, "nn/prop-area")
}

// BenchmarkAblation_Defeatured reproduces the Section 5.1 de-featuring study
// of Algorithm 2.
func BenchmarkAblation_Defeatured(b *testing.B) {
	var noPort float64
	for i := 0; i < b.N; i++ {
		r := experiments.Ablation(benchScale())
		noPort = r.MeanIncrease[1]
		printOnce("ablation", r.Render)
	}
	b.ReportMetric(100*noPort, "no-port-%slowdown")
}

// BenchmarkStarvation_Guard reproduces the Section 6.4 starvation experiment:
// the naive newest-first arbiter starves, Algorithm 2's local-age clause does
// not.
func BenchmarkStarvation_Guard(b *testing.B) {
	var naive, inspired float64
	for i := 0; i < b.N; i++ {
		r := experiments.Starvation(benchScale())
		naive = float64(r.MaxQueuedLocalAge[0])
		inspired = float64(r.MaxQueuedLocalAge[2])
		printOnce("starvation", r.Render)
	}
	b.ReportMetric(naive, "naive-max-age")
	b.ReportMetric(naive/inspired, "naive/alg2")
}

// BenchmarkHillClimb_FeatureSearch reproduces the Section 6.5 hill-climbing
// feature selection on the 4x4 mesh.
func BenchmarkHillClimb_FeatureSearch(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.HillClimbReport(benchScale())
	}
	printOnce("hillclimb", func() string { return out })
}

func indexOf(b *testing.B, xs []string, want string) int {
	b.Helper()
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	b.Fatalf("missing %q in %v", want, xs)
	return -1
}

func spread(row []float64) float64 {
	lo, hi := row[0], row[0]
	for _, v := range row {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// final is the mean of the last quarter of a curve.
func final(c []float64) float64 {
	k := len(c) / 4
	if k == 0 {
		k = 1
	}
	sum := 0.0
	for _, v := range c[len(c)-k:] {
		sum += v
	}
	return sum / float64(k)
}

// BenchmarkFairness_EqualityOfService is the extended equality-of-service
// study (Section 5.2's fairness observation): Jain's index over per-source
// mean latencies for the full policy set, including the related-work
// arbiters (wavefront, ping-pong, slack-aware).
func BenchmarkFairness_EqualityOfService(b *testing.B) {
	var gaJain, rrJain float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fairness(benchScale())
		for j, p := range r.Policies {
			switch p {
			case "global-age":
				gaJain = r.Jain[j]
			case "round-robin":
				rrJain = r.Jain[j]
			}
		}
		printOnce("fairness", r.Render)
	}
	b.ReportMetric(gaJain, "jain@global-age")
	b.ReportMetric(gaJain/rrJain, "ga/rr-jain")
}

// BenchmarkQTable_Impracticality quantifies Section 2.2: tabular Q-learning's
// state table keeps growing while the DQL network's parameters are fixed.
func BenchmarkQTable_Impracticality(b *testing.B) {
	var states, params float64
	for i := 0; i < b.N; i++ {
		r := experiments.QTableStudy(benchScale())
		states = float64(r.States)
		params = float64(r.DQLParams)
		printOnce("qtable", r.Render)
	}
	b.ReportMetric(states, "qtable-states")
	b.ReportMetric(states/params, "states/params")
}

// BenchmarkFlitLevel_CrossValidation re-runs the Fig. 5 policy comparison on
// the flit-level wormhole/VC engine: the ordering must hold at Garnet's
// granularity too.
func BenchmarkFlitLevel_CrossValidation(b *testing.B) {
	var fifo, rl float64
	for i := 0; i < b.N; i++ {
		r := experiments.FlitCheck(benchScale())
		fifo, rl = r.Normalized[1], r.Normalized[2]
		printOnce("flitcheck", r.Render)
	}
	b.ReportMetric(fifo, "fifo/GA")
	b.ReportMetric(rl, "rl/GA")
}

// BenchmarkDesignAblation_BufferDepth sweeps VC buffer capacity, quantifying
// the DESIGN.md observation that shallow buffers create the contention regime
// in which arbitration quality separates policies.
func BenchmarkDesignAblation_BufferDepth(b *testing.B) {
	var shallow, deep float64
	for i := 0; i < b.N; i++ {
		r := experiments.BufferAblation(benchScale())
		shallow = r.FIFOOverGA[0]
		deep = r.FIFOOverGA[len(r.FIFOOverGA)-1]
		printOnce("bufablation", r.Render)
	}
	b.ReportMetric(shallow, "fifo/GA@cap1")
	b.ReportMetric(deep, "fifo/GA@cap8")
}

// BenchmarkDesignAblation_TieBreak isolates the rotating select-max tie-break
// against the fixed first-max scan under saturated hotspot traffic.
func BenchmarkDesignAblation_TieBreak(b *testing.B) {
	var fixed, rotating float64
	for i := 0; i < b.N; i++ {
		r := experiments.TieBreakAblation(benchScale())
		fixed = float64(r.MaxAgeFixed)
		rotating = float64(r.MaxAgeRotating)
		printOnce("tiebreak", r.Render)
	}
	b.ReportMetric(fixed, "fixed-max-age")
	b.ReportMetric(fixed/rotating, "fixed/rotating")
}
