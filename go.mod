module mlnoc

go 1.22
